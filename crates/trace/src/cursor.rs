//! Streaming traversal of a thread's dynamic instruction stream.

use crate::op::MicroOp;
use crate::program::{Segment, ThreadScript};
use crate::sync::SyncOp;

/// The item currently under a [`ThreadCursor`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CursorItem {
    /// A micro-op (copied out of the lazily expanded block).
    Op(MicroOp),
    /// A synchronization event.
    Sync(SyncOp),
}

/// A zero-copy view of the next run of items under a [`ThreadCursor`].
///
/// Where [`CursorItem`] hands out one copied micro-op per call,
/// `BlockItem::Ops` borrows the *remainder of the current block* directly
/// from the cursor's expansion buffer: consumers iterate the slice in a
/// tight loop and then tell the cursor how far they got with
/// [`ThreadCursor::consume_ops`]. This is the hot-path API both the
/// profiler and the simulator drive.
#[derive(Debug, PartialEq)]
pub enum BlockItem<'c> {
    /// The unconsumed micro-ops of the current block (never empty).
    Ops(&'c [MicroOp]),
    /// A synchronization event (consume with
    /// [`ThreadCursor::consume_sync`]).
    Sync(SyncOp),
}

/// Streaming cursor over one thread's dynamic stream.
///
/// Blocks are expanded one at a time into an internal buffer, so traversing a
/// multi-million-op thread costs O(largest block) memory. Both the profiler
/// and the simulator drive the same cursor type, guaranteeing they observe
/// the identical stream.
///
/// Two access granularities are offered: the per-op [`ThreadCursor::item`] /
/// [`ThreadCursor::advance`] pair (simple, copies each op out), and the
/// zero-copy block API ([`ThreadCursor::peek_block`] +
/// [`ThreadCursor::consume_ops`] / [`ThreadCursor::consume_sync`]) that
/// lends out the remainder of the current block as a slice — the hot-path
/// form the profiler and simulator use.
///
/// # Example
///
/// ```
/// use rppm_trace::{BlockSpec, Program, Segment, ThreadCursor, CursorItem};
///
/// let mut p = Program::new("demo", 1);
/// p.threads[0].segments = vec![Segment::Block(BlockSpec::new(3, 1))];
/// let mut cur = ThreadCursor::new(&p.threads[0]);
/// let mut ops = 0;
/// while let Some(item) = cur.item() {
///     if let CursorItem::Op(_) = item { ops += 1; }
///     cur.advance();
/// }
/// assert_eq!(ops, 3);
/// ```
#[derive(Debug)]
pub struct ThreadCursor<'p> {
    script: &'p ThreadScript,
    seg: usize,
    buf: Vec<MicroOp>,
    buf_pos: usize,
    /// Whether `buf` holds the expansion of `segments[seg]`.
    filled: bool,
    ops_consumed: u64,
}

impl<'p> ThreadCursor<'p> {
    /// Creates a cursor positioned at the start of `script`.
    pub fn new(script: &'p ThreadScript) -> Self {
        ThreadCursor {
            script,
            seg: 0,
            buf: Vec::new(),
            buf_pos: 0,
            filled: false,
            ops_consumed: 0,
        }
    }

    /// Skips empty blocks and materializes the current block if needed.
    fn ensure(&mut self) {
        loop {
            match self.script.segments.get(self.seg) {
                Some(Segment::Block(b)) => {
                    if b.ops == 0 {
                        self.seg += 1;
                        self.filled = false;
                        continue;
                    }
                    if !self.filled {
                        self.buf.clear();
                        b.expand_into(&mut self.buf);
                        self.buf_pos = 0;
                        self.filled = true;
                    }
                    return;
                }
                Some(Segment::Sync(_)) | None => return,
            }
        }
    }

    /// Returns the remainder of the current block as a borrowed slice, the
    /// pending synchronization event, or `None` at end of stream.
    ///
    /// An `Ops` slice is never empty. Consume it (fully or partially) with
    /// [`ThreadCursor::consume_ops`]; consume a `Sync` item with
    /// [`ThreadCursor::consume_sync`]. Peeking repeatedly without consuming
    /// returns the same view.
    pub fn peek_block(&mut self) -> Option<BlockItem<'_>> {
        self.ensure();
        match self.script.segments.get(self.seg) {
            Some(Segment::Block(_)) => Some(BlockItem::Ops(&self.buf[self.buf_pos..])),
            Some(Segment::Sync(op)) => Some(BlockItem::Sync(*op)),
            None => None,
        }
    }

    /// Advances past `n` micro-ops of the current block.
    ///
    /// `n` must not exceed the length of the `Ops` slice the latest
    /// [`ThreadCursor::peek_block`] returned; consuming the whole slice
    /// moves the cursor to the next segment.
    pub fn consume_ops(&mut self, n: usize) {
        debug_assert!(
            self.filled && self.buf_pos + n <= self.buf.len(),
            "consume_ops({n}) without a matching peek_block"
        );
        self.ops_consumed += n as u64;
        self.buf_pos += n;
        if self.buf_pos >= self.buf.len() {
            self.seg += 1;
            self.filled = false;
        }
    }

    /// Advances past the pending synchronization event.
    ///
    /// Must only be called after [`ThreadCursor::peek_block`] returned
    /// [`BlockItem::Sync`].
    pub fn consume_sync(&mut self) {
        debug_assert!(
            matches!(self.script.segments.get(self.seg), Some(Segment::Sync(_))),
            "consume_sync without a pending sync event"
        );
        self.seg += 1;
        self.filled = false;
    }

    /// Returns the current item, or `None` at end of stream.
    ///
    /// Per-op convenience over [`ThreadCursor::peek_block`]; hot loops
    /// should consume whole blocks instead.
    pub fn item(&mut self) -> Option<CursorItem> {
        match self.peek_block() {
            Some(BlockItem::Ops(ops)) => Some(CursorItem::Op(ops[0])),
            Some(BlockItem::Sync(op)) => Some(CursorItem::Sync(op)),
            None => None,
        }
    }

    /// Advances past the current item.
    pub fn advance(&mut self) {
        self.ensure();
        match self.script.segments.get(self.seg) {
            Some(Segment::Block(_)) => self.consume_ops(1),
            Some(Segment::Sync(_)) => self.consume_sync(),
            None => {}
        }
    }

    /// Whether the stream is exhausted.
    pub fn at_end(&mut self) -> bool {
        self.ensure();
        self.seg >= self.script.segments.len()
    }

    /// Number of micro-ops consumed so far.
    pub fn ops_consumed(&self) -> u64 {
        self.ops_consumed
    }

    /// Consumes the remainder of the current block (if positioned inside
    /// one), returning the micro-ops as a slice valid until the next method
    /// call. Returns an empty slice when positioned at a sync event or at
    /// the end.
    ///
    /// This is the bulk API used by the profiler, which consumes whole
    /// epochs at a time.
    pub fn take_block(&mut self) -> &[MicroOp] {
        self.ensure();
        match self.script.segments.get(self.seg) {
            Some(Segment::Block(_)) => {
                let start = self.buf_pos;
                let len = self.buf.len() - start;
                self.ops_consumed += len as u64;
                self.buf_pos = self.buf.len();
                self.seg += 1;
                self.filled = false;
                &self.buf[start..]
            }
            _ => &[],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::BlockSpec;
    use crate::sync::{BarrierId, SyncOp};

    fn script(items: Vec<Segment>) -> ThreadScript {
        ThreadScript { segments: items }
    }

    fn barrier() -> Segment {
        Segment::Sync(SyncOp::Barrier {
            id: BarrierId(0),
            via_cond: false,
        })
    }

    #[test]
    fn walks_ops_then_sync() {
        let s = script(vec![
            Segment::Block(BlockSpec::new(2, 1)),
            barrier(),
            Segment::Block(BlockSpec::new(1, 2)),
        ]);
        let mut c = ThreadCursor::new(&s);
        let mut ops = 0;
        let mut syncs = 0;
        while let Some(item) = c.item() {
            match item {
                CursorItem::Op(_) => ops += 1,
                CursorItem::Sync(_) => syncs += 1,
            }
            c.advance();
        }
        assert_eq!(ops, 3);
        assert_eq!(syncs, 1);
        assert!(c.at_end());
        assert_eq!(c.ops_consumed(), 3);
    }

    #[test]
    fn empty_script_is_at_end() {
        let s = script(vec![]);
        let mut c = ThreadCursor::new(&s);
        assert!(c.at_end());
        assert_eq!(c.item(), None);
    }

    #[test]
    fn zero_op_blocks_are_skipped() {
        let s = script(vec![Segment::Block(BlockSpec::new(0, 1)), barrier()]);
        let mut c = ThreadCursor::new(&s);
        assert!(matches!(c.item(), Some(CursorItem::Sync(_))));
        c.advance();
        assert!(c.at_end());
    }

    #[test]
    fn trailing_zero_block_still_ends() {
        let s = script(vec![barrier(), Segment::Block(BlockSpec::new(0, 1))]);
        let mut c = ThreadCursor::new(&s);
        c.advance();
        assert!(c.at_end());
        assert_eq!(c.item(), None);
    }

    #[test]
    fn take_block_consumes_remaining_ops() {
        let s = script(vec![Segment::Block(BlockSpec::new(5, 1)), barrier()]);
        let mut c = ThreadCursor::new(&s);
        c.advance();
        c.advance();
        let rest = c.take_block().len();
        assert_eq!(rest, 3);
        assert!(matches!(c.item(), Some(CursorItem::Sync(_))));
        assert_eq!(c.ops_consumed(), 5);
    }

    #[test]
    fn take_block_at_sync_is_empty() {
        let s = script(vec![barrier()]);
        let mut c = ThreadCursor::new(&s);
        assert!(c.take_block().is_empty());
        assert!(matches!(c.item(), Some(CursorItem::Sync(_))));
    }

    #[test]
    fn stream_matches_direct_expansion() {
        let b = BlockSpec::new(100, 9).loads(0.2).branches(0.1);
        let direct = b.expand();
        let s = script(vec![Segment::Block(b)]);
        let mut c = ThreadCursor::new(&s);
        let mut streamed = Vec::new();
        while let Some(CursorItem::Op(op)) = c.item() {
            streamed.push(op);
            c.advance();
        }
        assert_eq!(streamed, direct);
    }

    #[test]
    fn peek_block_lends_remaining_ops() {
        let s = script(vec![Segment::Block(BlockSpec::new(10, 1)), barrier()]);
        let mut c = ThreadCursor::new(&s);
        let Some(BlockItem::Ops(ops)) = c.peek_block() else {
            panic!("expected ops");
        };
        assert_eq!(ops.len(), 10);
        c.consume_ops(4);
        let Some(BlockItem::Ops(rest)) = c.peek_block() else {
            panic!("expected remaining ops");
        };
        assert_eq!(rest.len(), 6);
        c.consume_ops(6);
        assert_eq!(c.ops_consumed(), 10);
        assert!(matches!(c.peek_block(), Some(BlockItem::Sync(_))));
        c.consume_sync();
        assert!(c.at_end());
        assert_eq!(c.peek_block(), None);
    }

    #[test]
    fn block_api_matches_per_op_api() {
        let s = script(vec![
            Segment::Block(BlockSpec::new(100, 9).loads(0.2).branches(0.1)),
            barrier(),
            Segment::Block(BlockSpec::new(33, 4)),
            Segment::Block(BlockSpec::new(7, 5)),
        ]);
        let mut per_op = Vec::new();
        let mut c = ThreadCursor::new(&s);
        while let Some(item) = c.item() {
            if let CursorItem::Op(op) = item {
                per_op.push(op);
            }
            c.advance();
        }
        let mut blocks = Vec::new();
        let mut c = ThreadCursor::new(&s);
        loop {
            match c.peek_block() {
                None => break,
                Some(BlockItem::Sync(_)) => c.consume_sync(),
                Some(BlockItem::Ops(ops)) => {
                    blocks.extend_from_slice(ops);
                    let n = ops.len();
                    c.consume_ops(n);
                }
            }
        }
        assert_eq!(per_op, blocks);
    }

    #[test]
    fn partial_consume_splits_blocks_consistently() {
        let b = BlockSpec::new(50, 3).loads(0.3);
        let direct = b.expand();
        let s = script(vec![Segment::Block(b)]);
        let mut c = ThreadCursor::new(&s);
        let mut streamed = Vec::new();
        // Consume in ragged chunks (1, 2, 3, ... ops at a time).
        let mut chunk = 1;
        while let Some(BlockItem::Ops(ops)) = c.peek_block() {
            let take = chunk.min(ops.len());
            streamed.extend_from_slice(&ops[..take]);
            c.consume_ops(take);
            chunk += 1;
        }
        assert_eq!(streamed, direct);
        assert!(c.at_end());
    }

    #[test]
    fn consecutive_blocks_both_stream() {
        let s = script(vec![
            Segment::Block(BlockSpec::new(10, 1)),
            Segment::Block(BlockSpec::new(20, 2)),
        ]);
        let mut c = ThreadCursor::new(&s);
        let mut n = 0;
        while let Some(CursorItem::Op(_)) = c.item() {
            n += 1;
            c.advance();
        }
        assert_eq!(n, 30);
    }
}

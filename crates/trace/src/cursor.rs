//! Streaming traversal of a thread's dynamic instruction stream.

use crate::block::BlockExpander;
use crate::op::MicroOp;
use crate::ops::ReplayCursor;
use crate::program::{Program, ProgramError, Segment, ThreadScript};
use crate::sync::SyncOp;

/// Micro-ops expanded per refill of the cursor's buffer.
///
/// 1024 ops x 32 B/op = 32 KB — one chunk stays resident in the host L1/L2
/// while the simulator walks it. Whole-block expansion of the multi-ten-
/// thousand-op epoch blocks real workloads use writes hundreds of KB per
/// block; with eight thread cursors interleaved per scheduling quantum that
/// round-trips every op through host DRAM between expansion and simulation.
pub(crate) const EXPAND_CHUNK: usize = 1024;

/// The item currently under a [`ThreadCursor`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CursorItem {
    /// A micro-op (copied out of the lazily expanded block).
    Op(MicroOp),
    /// A synchronization event.
    Sync(SyncOp),
}

/// A zero-copy view of the next run of items under a [`ThreadCursor`].
///
/// Where [`CursorItem`] hands out one copied micro-op per call,
/// `BlockItem::Ops` borrows a *run of unconsumed micro-ops* of the current
/// block directly from the cursor's expansion buffer: consumers iterate the
/// slice in a tight loop and then tell the cursor how far they got with
/// [`ThreadCursor::consume_ops`]. The run covers at most one expansion
/// chunk, so a large block is lent as several successive slices. This is
/// the hot-path API both the profiler and the simulator drive.
#[derive(Debug, PartialEq)]
pub enum BlockItem<'c> {
    /// A run of unconsumed micro-ops of the current block (never empty).
    Ops(&'c [MicroOp]),
    /// A synchronization event (consume with
    /// [`ThreadCursor::consume_sync`]).
    Sync(SyncOp),
}

/// The expansion-backed cursor over a [`ThreadScript`] (the original and
/// still the default [`ThreadCursor`] backing).
#[derive(Debug)]
struct ScriptCursor<'p> {
    script: &'p ThreadScript,
    seg: usize,
    /// Streaming expander for `segments[seg]`, carried across chunk refills.
    expander: Option<BlockExpander<'p>>,
    buf: Vec<MicroOp>,
    buf_pos: usize,
    /// Whether `buf` holds an unconsumed chunk of `segments[seg]`.
    filled: bool,
    ops_consumed: u64,
}

impl<'p> ScriptCursor<'p> {
    /// Creates a cursor positioned at the start of `script`.
    fn new(script: &'p ThreadScript) -> Self {
        ScriptCursor {
            script,
            seg: 0,
            expander: None,
            buf: Vec::new(),
            buf_pos: 0,
            filled: false,
            ops_consumed: 0,
        }
    }

    /// Skips empty blocks and materializes the current chunk if needed.
    fn ensure(&mut self) {
        let script = self.script;
        loop {
            match script.segments.get(self.seg) {
                Some(Segment::Block(b)) => {
                    if b.ops == 0 {
                        self.seg += 1;
                        self.filled = false;
                        continue;
                    }
                    if !self.filled {
                        let e = self.expander.get_or_insert_with(|| b.expander());
                        self.buf.clear();
                        self.buf_pos = 0;
                        e.expand_chunk(&mut self.buf, EXPAND_CHUNK);
                        self.filled = true;
                    }
                    return;
                }
                Some(Segment::Sync(_)) | None => return,
            }
        }
    }

    /// Returns a run of unconsumed micro-ops of the current block as a
    /// borrowed slice, the pending synchronization event, or `None` at end
    /// of stream.
    ///
    /// An `Ops` slice is never empty, but may cover only part of the block
    /// (one expansion chunk); the following peek lends the next run. Consume
    /// it (fully or partially) with [`ThreadCursor::consume_ops`]; consume a
    /// `Sync` item with [`ThreadCursor::consume_sync`]. Peeking repeatedly
    /// without consuming returns the same view.
    fn peek_block(&mut self) -> Option<BlockItem<'_>> {
        self.ensure();
        match self.script.segments.get(self.seg) {
            Some(Segment::Block(_)) => Some(BlockItem::Ops(&self.buf[self.buf_pos..])),
            Some(Segment::Sync(op)) => Some(BlockItem::Sync(*op)),
            None => None,
        }
    }

    /// Advances past `n` micro-ops of the current block.
    ///
    /// `n` must not exceed the length of the `Ops` slice the latest
    /// [`ThreadCursor::peek_block`] returned; consuming the whole slice
    /// moves the cursor to the next segment.
    fn consume_ops(&mut self, n: usize) {
        debug_assert!(
            self.filled && self.buf_pos + n <= self.buf.len(),
            "consume_ops({n}) without a matching peek_block"
        );
        self.ops_consumed += n as u64;
        self.buf_pos += n;
        if self.buf_pos >= self.buf.len() {
            self.filled = false;
            // Advance to the next segment only once the expander is drained;
            // otherwise the next ensure() refills the buffer with the
            // block's next chunk.
            if self.expander.as_ref().is_none_or(|e| e.remaining() == 0) {
                self.expander = None;
                self.seg += 1;
            }
        }
    }

    /// Advances past the pending synchronization event.
    ///
    /// Must only be called after [`ThreadCursor::peek_block`] returned
    /// [`BlockItem::Sync`].
    fn consume_sync(&mut self) {
        debug_assert!(
            matches!(self.script.segments.get(self.seg), Some(Segment::Sync(_))),
            "consume_sync without a pending sync event"
        );
        self.seg += 1;
        self.filled = false;
    }

    /// Whether the stream is exhausted.
    fn at_end(&mut self) -> bool {
        self.ensure();
        self.seg >= self.script.segments.len()
    }

    /// Number of micro-ops consumed so far.
    fn ops_consumed(&self) -> u64 {
        self.ops_consumed
    }

    /// Consumes the remainder of the current block (if positioned inside
    /// one), returning the micro-ops as a slice valid until the next method
    /// call. Returns an empty slice when positioned at a sync event or at
    /// the end.
    ///
    /// This is the bulk API used by the profiler, which consumes whole
    /// epochs at a time.
    fn take_block(&mut self) -> &[MicroOp] {
        self.ensure();
        match self.script.segments.get(self.seg) {
            Some(Segment::Block(_)) => {
                let start = self.buf_pos;
                // Materialize the block's remaining chunks so the whole
                // remainder is one contiguous slice.
                if let Some(e) = self.expander.as_mut() {
                    e.expand_chunk(&mut self.buf, usize::MAX);
                }
                let len = self.buf.len() - start;
                self.ops_consumed += len as u64;
                self.buf_pos = self.buf.len();
                self.seg += 1;
                self.filled = false;
                self.expander = None;
                &self.buf[start..]
            }
            _ => &[],
        }
    }
}

/// Streaming cursor over one thread's dynamic stream.
///
/// Two backings exist behind the same API, so every consumer — profiler,
/// both simulator cores — observes the identical stream whichever way the
/// trace arrives:
///
/// * **expansion-backed** ([`ThreadCursor::new`]): blocks of a
///   [`ThreadScript`] are expanded deterministically in cache-sized chunks
///   (`EXPAND_CHUNK` ops) into an internal buffer, so traversing a
///   multi-million-op thread costs O(chunk) memory;
/// * **replay-backed** ([`crate::ops::OpReplay::cursor`]): a recorded raw
///   micro-op stream is decoded out-of-core from a version-3 `RPT1`
///   container, section by section, without re-expansion.
///
/// Two access granularities are offered: the per-op [`ThreadCursor::item`] /
/// [`ThreadCursor::advance`] pair (simple, copies each op out), and the
/// zero-copy block API ([`ThreadCursor::peek_block`] +
/// [`ThreadCursor::consume_ops`] / [`ThreadCursor::consume_sync`]) that
/// lends out a run of unconsumed micro-ops as a slice — the hot-path form
/// the profiler and simulator use.
///
/// # Example
///
/// ```
/// use rppm_trace::{BlockSpec, Program, Segment, ThreadCursor, CursorItem};
///
/// let mut p = Program::new("demo", 1);
/// p.threads[0].segments = vec![Segment::Block(BlockSpec::new(3, 1))];
/// let mut cur = ThreadCursor::new(&p.threads[0]);
/// let mut ops = 0;
/// while let Some(item) = cur.item() {
///     if let CursorItem::Op(_) = item { ops += 1; }
///     cur.advance();
/// }
/// assert_eq!(ops, 3);
/// ```
#[derive(Debug)]
pub struct ThreadCursor<'p> {
    inner: CursorInner<'p>,
}

// One cursor exists per thread per run and both variants sit on the
// caller's stack; boxing the larger one would put an indirection on the
// per-op hot path (the `cursor` bench group) to save a few hundred bytes.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
enum CursorInner<'p> {
    Script(ScriptCursor<'p>),
    Replay(ReplayCursor<'p>),
}

impl<'p> ThreadCursor<'p> {
    /// Creates an expansion-backed cursor positioned at the start of
    /// `script`.
    pub fn new(script: &'p ThreadScript) -> Self {
        ThreadCursor {
            inner: CursorInner::Script(ScriptCursor::new(script)),
        }
    }

    /// Wraps a replay-backed cursor (see [`crate::ops::OpReplay`]).
    pub(crate) fn from_replay(replay: ReplayCursor<'p>) -> Self {
        ThreadCursor {
            inner: CursorInner::Replay(replay),
        }
    }

    /// Returns a run of unconsumed micro-ops of the current block as a
    /// borrowed slice, the pending synchronization event, or `None` at end
    /// of stream.
    ///
    /// An `Ops` slice is never empty, but may cover only part of the block
    /// (one expansion chunk); the following peek lends the next run. Consume
    /// it (fully or partially) with [`ThreadCursor::consume_ops`]; consume a
    /// `Sync` item with [`ThreadCursor::consume_sync`]. Peeking repeatedly
    /// without consuming returns the same view.
    pub fn peek_block(&mut self) -> Option<BlockItem<'_>> {
        match &mut self.inner {
            CursorInner::Script(c) => c.peek_block(),
            CursorInner::Replay(c) => c.peek_block(),
        }
    }

    /// Advances past `n` micro-ops of the current block.
    ///
    /// `n` must not exceed the length of the `Ops` slice the latest
    /// [`ThreadCursor::peek_block`] returned; consuming the whole slice
    /// moves the cursor to the next segment.
    pub fn consume_ops(&mut self, n: usize) {
        match &mut self.inner {
            CursorInner::Script(c) => c.consume_ops(n),
            CursorInner::Replay(c) => c.consume_ops(n),
        }
    }

    /// Advances past the pending synchronization event.
    ///
    /// Must only be called after [`ThreadCursor::peek_block`] returned
    /// [`BlockItem::Sync`].
    pub fn consume_sync(&mut self) {
        match &mut self.inner {
            CursorInner::Script(c) => c.consume_sync(),
            CursorInner::Replay(c) => c.consume_sync(),
        }
    }

    /// Returns the current item, or `None` at end of stream.
    ///
    /// Per-op convenience over [`ThreadCursor::peek_block`]; hot loops
    /// should consume whole blocks instead.
    pub fn item(&mut self) -> Option<CursorItem> {
        match self.peek_block() {
            Some(BlockItem::Ops(ops)) => Some(CursorItem::Op(ops[0])),
            Some(BlockItem::Sync(op)) => Some(CursorItem::Sync(op)),
            None => None,
        }
    }

    /// Advances past the current item.
    pub fn advance(&mut self) {
        enum Kind {
            Ops,
            Sync,
            End,
        }
        let kind = match self.peek_block() {
            Some(BlockItem::Ops(_)) => Kind::Ops,
            Some(BlockItem::Sync(_)) => Kind::Sync,
            None => Kind::End,
        };
        match kind {
            Kind::Ops => self.consume_ops(1),
            Kind::Sync => self.consume_sync(),
            Kind::End => {}
        }
    }

    /// Whether the stream is exhausted.
    pub fn at_end(&mut self) -> bool {
        match &mut self.inner {
            CursorInner::Script(c) => c.at_end(),
            CursorInner::Replay(c) => c.at_end(),
        }
    }

    /// Number of micro-ops consumed so far.
    pub fn ops_consumed(&self) -> u64 {
        match &self.inner {
            CursorInner::Script(c) => c.ops_consumed(),
            CursorInner::Replay(c) => c.ops_consumed(),
        }
    }

    /// Consumes the remainder of the current run of micro-ops (if
    /// positioned inside one), returning them as a slice valid until the
    /// next method call. Returns an empty slice when positioned at a sync
    /// event or at the end.
    ///
    /// For an expansion-backed cursor the run is the current block; for a
    /// replay-backed cursor it is the current recorded op run (consecutive
    /// blocks merge into one run when recorded).
    pub fn take_block(&mut self) -> &[MicroOp] {
        match &mut self.inner {
            CursorInner::Script(c) => c.take_block(),
            CursorInner::Replay(c) => c.take_block(),
        }
    }
}

/// A source of per-thread dynamic instruction streams the profiler and the
/// simulator can execute.
///
/// Two implementations exist: [`Program`] (micro-ops expanded on the fly
/// from parametric block specifications — the original path) and
/// [`crate::ops::OpReplay`] (micro-ops replayed out-of-core from a
/// version-3 `RPT1` container without re-expansion). Consumers generic
/// over `ExecSource` are guaranteed the two backings yield bit-identical
/// streams — that property is pinned by the differential suites in
/// `rppm-profiler` and `rppm-sim`.
pub trait ExecSource {
    /// Workload name (benchmark identifier).
    fn name(&self) -> &str;

    /// Number of threads in the workload.
    fn num_threads(&self) -> usize;

    /// Validates the structural invariants of the underlying program.
    ///
    /// # Errors
    ///
    /// Returns a [`ProgramError`] describing the first violation found.
    fn validate(&self) -> Result<(), ProgramError>;

    /// Opens a streaming cursor over `thread`'s dynamic stream.
    ///
    /// # Panics
    ///
    /// Panics if the thread does not exist.
    fn cursor(&self, thread: usize) -> ThreadCursor<'_>;

    /// The synchronization events of `thread`, in stream order (used for
    /// barrier-participant counting before execution starts).
    ///
    /// # Panics
    ///
    /// Panics if the thread does not exist.
    fn sync_ops(&self, thread: usize) -> Vec<SyncOp>;
}

impl ExecSource for Program {
    fn name(&self) -> &str {
        &self.name
    }

    fn num_threads(&self) -> usize {
        self.threads.len()
    }

    fn validate(&self) -> Result<(), ProgramError> {
        Program::validate(self)
    }

    fn cursor(&self, thread: usize) -> ThreadCursor<'_> {
        ThreadCursor::new(&self.threads[thread])
    }

    fn sync_ops(&self, thread: usize) -> Vec<SyncOp> {
        self.threads[thread].sync_ops().copied().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::BlockSpec;
    use crate::sync::{BarrierId, SyncOp};

    fn script(items: Vec<Segment>) -> ThreadScript {
        ThreadScript { segments: items }
    }

    fn barrier() -> Segment {
        Segment::Sync(SyncOp::Barrier {
            id: BarrierId(0),
            via_cond: false,
        })
    }

    #[test]
    fn walks_ops_then_sync() {
        let s = script(vec![
            Segment::Block(BlockSpec::new(2, 1)),
            barrier(),
            Segment::Block(BlockSpec::new(1, 2)),
        ]);
        let mut c = ThreadCursor::new(&s);
        let mut ops = 0;
        let mut syncs = 0;
        while let Some(item) = c.item() {
            match item {
                CursorItem::Op(_) => ops += 1,
                CursorItem::Sync(_) => syncs += 1,
            }
            c.advance();
        }
        assert_eq!(ops, 3);
        assert_eq!(syncs, 1);
        assert!(c.at_end());
        assert_eq!(c.ops_consumed(), 3);
    }

    #[test]
    fn empty_script_is_at_end() {
        let s = script(vec![]);
        let mut c = ThreadCursor::new(&s);
        assert!(c.at_end());
        assert_eq!(c.item(), None);
    }

    #[test]
    fn zero_op_blocks_are_skipped() {
        let s = script(vec![Segment::Block(BlockSpec::new(0, 1)), barrier()]);
        let mut c = ThreadCursor::new(&s);
        assert!(matches!(c.item(), Some(CursorItem::Sync(_))));
        c.advance();
        assert!(c.at_end());
    }

    #[test]
    fn trailing_zero_block_still_ends() {
        let s = script(vec![barrier(), Segment::Block(BlockSpec::new(0, 1))]);
        let mut c = ThreadCursor::new(&s);
        c.advance();
        assert!(c.at_end());
        assert_eq!(c.item(), None);
    }

    #[test]
    fn take_block_consumes_remaining_ops() {
        let s = script(vec![Segment::Block(BlockSpec::new(5, 1)), barrier()]);
        let mut c = ThreadCursor::new(&s);
        c.advance();
        c.advance();
        let rest = c.take_block().len();
        assert_eq!(rest, 3);
        assert!(matches!(c.item(), Some(CursorItem::Sync(_))));
        assert_eq!(c.ops_consumed(), 5);
    }

    #[test]
    fn take_block_at_sync_is_empty() {
        let s = script(vec![barrier()]);
        let mut c = ThreadCursor::new(&s);
        assert!(c.take_block().is_empty());
        assert!(matches!(c.item(), Some(CursorItem::Sync(_))));
    }

    #[test]
    fn stream_matches_direct_expansion() {
        let b = BlockSpec::new(100, 9).loads(0.2).branches(0.1);
        let direct = b.expand();
        let s = script(vec![Segment::Block(b)]);
        let mut c = ThreadCursor::new(&s);
        let mut streamed = Vec::new();
        while let Some(CursorItem::Op(op)) = c.item() {
            streamed.push(op);
            c.advance();
        }
        assert_eq!(streamed, direct);
    }

    #[test]
    fn peek_block_lends_remaining_ops() {
        let s = script(vec![Segment::Block(BlockSpec::new(10, 1)), barrier()]);
        let mut c = ThreadCursor::new(&s);
        let Some(BlockItem::Ops(ops)) = c.peek_block() else {
            panic!("expected ops");
        };
        assert_eq!(ops.len(), 10);
        c.consume_ops(4);
        let Some(BlockItem::Ops(rest)) = c.peek_block() else {
            panic!("expected remaining ops");
        };
        assert_eq!(rest.len(), 6);
        c.consume_ops(6);
        assert_eq!(c.ops_consumed(), 10);
        assert!(matches!(c.peek_block(), Some(BlockItem::Sync(_))));
        c.consume_sync();
        assert!(c.at_end());
        assert_eq!(c.peek_block(), None);
    }

    #[test]
    fn block_api_matches_per_op_api() {
        let s = script(vec![
            Segment::Block(BlockSpec::new(100, 9).loads(0.2).branches(0.1)),
            barrier(),
            Segment::Block(BlockSpec::new(33, 4)),
            Segment::Block(BlockSpec::new(7, 5)),
        ]);
        let mut per_op = Vec::new();
        let mut c = ThreadCursor::new(&s);
        while let Some(item) = c.item() {
            if let CursorItem::Op(op) = item {
                per_op.push(op);
            }
            c.advance();
        }
        let mut blocks = Vec::new();
        let mut c = ThreadCursor::new(&s);
        loop {
            match c.peek_block() {
                None => break,
                Some(BlockItem::Sync(_)) => c.consume_sync(),
                Some(BlockItem::Ops(ops)) => {
                    blocks.extend_from_slice(ops);
                    let n = ops.len();
                    c.consume_ops(n);
                }
            }
        }
        assert_eq!(per_op, blocks);
    }

    #[test]
    fn partial_consume_splits_blocks_consistently() {
        let b = BlockSpec::new(50, 3).loads(0.3);
        let direct = b.expand();
        let s = script(vec![Segment::Block(b)]);
        let mut c = ThreadCursor::new(&s);
        let mut streamed = Vec::new();
        // Consume in ragged chunks (1, 2, 3, ... ops at a time).
        let mut chunk = 1;
        while let Some(BlockItem::Ops(ops)) = c.peek_block() {
            let take = chunk.min(ops.len());
            streamed.extend_from_slice(&ops[..take]);
            c.consume_ops(take);
            chunk += 1;
        }
        assert_eq!(streamed, direct);
        assert!(c.at_end());
    }

    #[test]
    fn chunked_block_streams_identically() {
        // Block larger than one expansion chunk: the cursor must lend it as
        // several runs whose concatenation equals the direct expansion.
        let b = BlockSpec::new(EXPAND_CHUNK as u32 * 3 + 17, 11)
            .loads(0.3)
            .stores(0.1)
            .branches(0.1);
        let direct = b.expand();
        let s = script(vec![Segment::Block(b), barrier()]);
        let mut c = ThreadCursor::new(&s);
        let mut streamed = Vec::new();
        let mut runs = 0;
        while let Some(BlockItem::Ops(ops)) = c.peek_block() {
            assert!(ops.len() <= EXPAND_CHUNK);
            streamed.extend_from_slice(ops);
            let n = ops.len();
            c.consume_ops(n);
            runs += 1;
        }
        assert!(runs >= 4, "expected several chunk runs, got {runs}");
        assert_eq!(streamed, direct);
        assert_eq!(c.ops_consumed(), direct.len() as u64);
        assert!(matches!(c.peek_block(), Some(BlockItem::Sync(_))));
    }

    #[test]
    fn take_block_spanning_chunks_returns_whole_remainder() {
        let b = BlockSpec::new(EXPAND_CHUNK as u32 * 2 + 5, 13).loads(0.2);
        let direct = b.expand();
        let s = script(vec![Segment::Block(b), barrier()]);
        let mut c = ThreadCursor::new(&s);
        c.advance();
        c.advance();
        let rest = c.take_block().to_vec();
        assert_eq!(rest.len(), direct.len() - 2);
        assert_eq!(rest, direct[2..]);
        assert!(matches!(c.item(), Some(CursorItem::Sync(_))));
        assert_eq!(c.ops_consumed(), direct.len() as u64);
    }

    #[test]
    fn consecutive_blocks_both_stream() {
        let s = script(vec![
            Segment::Block(BlockSpec::new(10, 1)),
            Segment::Block(BlockSpec::new(20, 2)),
        ]);
        let mut c = ThreadCursor::new(&s);
        let mut n = 0;
        while let Some(CursorItem::Op(_)) = c.item() {
            n += 1;
            c.advance();
        }
        assert_eq!(n, 30);
    }
}

//! Small deterministic pseudo-random number generator.
//!
//! Workload expansion must be bit-for-bit reproducible across runs, platforms
//! and crate versions (the whole "profile once, predict many" workflow depends
//! on the profiler and the simulator observing the *same* dynamic
//! instruction stream). We therefore use a self-contained splitmix64/
//! xoshiro256** generator instead of an external crate whose stream might
//! change between releases.

use serde::{Deserialize, Serialize};

/// Deterministic pseudo-random number generator (xoshiro256**).
///
/// Seeded via splitmix64 so that nearby seeds produce uncorrelated streams.
///
/// # Example
///
/// ```
/// use rppm_trace::Rng;
/// let mut a = Rng::new(42);
/// let mut b = Rng::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Rng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

impl Rng {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Rng { s }
    }

    /// Returns the next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Returns a uniformly distributed value in `[0, bound)`.
    ///
    /// Returns 0 when `bound == 0`.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            return 0;
        }
        // Lemire's multiply-shift; bias is negligible for our bounds.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Returns a uniformly distributed `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Samples a geometric distribution with success probability `p`,
    /// returning a value `>= 1`. Used for register dependence distances.
    pub fn geometric(&mut self, p: f64) -> u64 {
        self.geometric_with(Self::geometric_ln(p))
    }

    /// Precomputed denominator for [`Rng::geometric_with`]: `ln(1 - p)` with
    /// the same clamping [`Rng::geometric`] applies. Hot expansion loops
    /// compute this once per block instead of once per sample; the division
    /// operands are unchanged, so the sampled stream is bit-identical.
    pub fn geometric_ln(p: f64) -> f64 {
        let p = p.clamp(1e-9, 1.0);
        (1.0 - p).max(1e-12).ln()
    }

    /// Samples a geometric distribution whose `ln(1 - p)` denominator was
    /// precomputed by [`Rng::geometric_ln`].
    pub fn geometric_with(&mut self, ln_q: f64) -> u64 {
        let u = self.next_f64().max(1e-300);
        (u.ln() / ln_q).floor() as u64 + 1
    }

    /// Derives an independent generator for a sub-stream.
    pub fn fork(&mut self, tag: u64) -> Rng {
        Rng::new(self.next_u64() ^ tag.wrapping_mul(0x9E3779B97F4A7C15))
    }
}

impl Default for Rng {
    fn default() -> Self {
        Rng::new(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = Rng::new(12345);
        let mut b = Rng::new(12345);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        let same = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn next_below_in_range() {
        let mut r = Rng::new(7);
        for bound in [1u64, 2, 3, 10, 1000, u64::MAX] {
            for _ in 0..100 {
                assert!(r.next_below(bound) < bound);
            }
        }
        assert_eq!(r.next_below(0), 0);
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut r = Rng::new(99);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn f64_mean_is_centered() {
        let mut r = Rng::new(4);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| r.next_f64()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn geometric_mean_matches() {
        let mut r = Rng::new(11);
        let p = 0.5;
        let n = 100_000;
        let sum: u64 = (0..n).map(|_| r.geometric(p)).sum();
        let mean = sum as f64 / n as f64;
        // E[X] = 1/p = 2.
        assert!((mean - 2.0).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn chance_probability() {
        let mut r = Rng::new(5);
        let hits = (0..100_000).filter(|_| r.chance(0.25)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((frac - 0.25).abs() < 0.01, "frac {frac}");
    }

    #[test]
    fn fork_streams_are_independent() {
        let mut base = Rng::new(3);
        let mut f1 = base.fork(1);
        let mut f2 = base.fork(2);
        let same = (0..100).filter(|_| f1.next_u64() == f2.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn serde_round_trip() {
        let mut r = Rng::new(17);
        r.next_u64();
        let json = serde_json::to_string(&r).unwrap();
        let mut back: Rng = serde_json::from_str(&json).unwrap();
        let mut orig = r.clone();
        assert_eq!(orig.next_u64(), back.next_u64());
    }
}

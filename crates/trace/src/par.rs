//! Minimal scoped-thread fan-out used by design-space sweeps and trace
//! decode.
//!
//! Prediction is embarrassingly parallel — every (profile, configuration)
//! cell is independent — so a design-space sweep only needs a
//! deterministic index-parallel loop, not a task system. [`parallel_for`]
//! is that loop: dynamically load-balanced over scoped worker threads,
//! with results placed by index so output order never depends on the
//! worker count. The `rppm` session facade (`predict_sweep`), the
//! `rppm-bench` experiment engine and the version-3 trace container's
//! section-parallel decode ([`crate::ops`]) all drive their fan-out
//! through it. It lives in `rppm-trace` (the bottom of the crate stack)
//! and is re-exported unchanged as `rppm_core::par`.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Default worker count: one per available core.
pub fn default_jobs() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Runs `f(0..n)` on up to `jobs` scoped worker threads, dynamically
/// load-balanced. With `jobs <= 1` (or `n <= 1`) runs inline on the caller
/// thread. Panics in `f` propagate to the caller.
pub fn parallel_for(jobs: usize, n: usize, f: impl Fn(usize) + Sync) {
    let jobs = jobs.clamp(1, n.max(1));
    if jobs == 1 {
        for i in 0..n {
            f(i);
        }
        return;
    }
    let next = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..jobs {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                f(i);
            });
        }
    });
}

/// Maps `f` over `0..n` on up to `jobs` worker threads, collecting results
/// in index order (independent of scheduling).
pub fn parallel_map<T: Send>(jobs: usize, n: usize, f: impl Fn(usize) -> T + Sync) -> Vec<T> {
    let slots: Vec<std::sync::Mutex<Option<T>>> =
        (0..n).map(|_| std::sync::Mutex::new(None)).collect();
    parallel_for(jobs, n, |i| {
        *slots[i].lock().expect("slot lock") = Some(f(i));
    });
    slots
        .into_iter()
        .map(|s| s.into_inner().expect("slot lock").expect("slot filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_for_covers_every_index() {
        let hits: Vec<AtomicUsize> = (0..100).map(|_| AtomicUsize::new(0)).collect();
        parallel_for(4, hits.len(), |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn parallel_map_is_index_ordered() {
        let out = parallel_map(8, 50, |i| i * 2);
        assert_eq!(out, (0..50).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn single_job_runs_inline() {
        let out = parallel_map(1, 4, |i| i + 1);
        assert_eq!(out, vec![1, 2, 3, 4]);
    }
}

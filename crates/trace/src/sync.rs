//! Synchronization events.
//!
//! RPPM's profiler hooks the pthread/OpenMP library calls that delimit
//! inter-synchronization epochs (Section III-A of the paper). Our trace IR
//! carries the same events as first-class items in each thread's stream.
//!
//! Condition variables deserve care: in the paper, whether a thread actually
//! calls `pthread_cond_wait` is timing-dependent, so source-level *markers*
//! flag every point where a thread *may* wait. Our IR takes the equivalent
//! route: condition-variable synchronization appears as semantic operations
//! ([`SyncOp::Produce`], [`SyncOp::Consume`], and barriers flagged
//! `via_cond`), i.e. the trace records the marker — the possibility of
//! waiting — and the timing domains (simulator / symbolic execution) decide
//! who actually waits.

use serde::{Deserialize, Serialize};

macro_rules! id_newtype {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default,
            Serialize, Deserialize,
        )]
        pub struct $name(pub u32);

        impl From<u32> for $name {
            fn from(v: u32) -> Self {
                $name(v)
            }
        }

        impl From<$name> for u32 {
            fn from(v: $name) -> u32 {
                v.0
            }
        }

        impl std::fmt::Display for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, "{}{}", stringify!($name).chars().next().unwrap_or('#'), self.0)
            }
        }

        impl $name {
            /// Returns the raw index.
            #[inline]
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }
    };
}

id_newtype!(
    /// Identifies a thread within a [`crate::Program`] (0 is the main thread).
    ThreadId
);
id_newtype!(
    /// Identifies a barrier object.
    BarrierId
);
id_newtype!(
    /// Identifies a mutex object (critical section).
    MutexId
);
id_newtype!(
    /// Identifies a condition-variable object.
    CondId
);
id_newtype!(
    /// Identifies a producer/consumer queue implemented with a condition
    /// variable.
    QueueId
);
id_newtype!(
    /// Identifies a reader-writer lock object.
    ///
    /// Reader-writer events are trace-format version 2: traces containing
    /// them cannot be serialized as version-1 artifacts.
    RwLockId
);
id_newtype!(
    /// Identifies a counting semaphore object.
    ///
    /// Semaphore events are trace-format version 2: traces containing them
    /// cannot be serialized as version-1 artifacts.
    SemId
);

/// A synchronization event in a thread's dynamic stream.
///
/// Each variant corresponds to a library call the paper's profiler tracks
/// (`pthread_create`, `pthread_join`, `pthread_mutex_lock`/`unlock`,
/// `gomp_team_barrier_wait`, `pthread_cond_wait`/`broadcast` + manual
/// markers).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SyncOp {
    /// The executing thread creates (unblocks) `child`.
    Create {
        /// Thread being created.
        child: ThreadId,
    },
    /// The executing thread waits until `child` has finished its stream.
    Join {
        /// Thread being joined.
        child: ThreadId,
    },
    /// All participating threads wait for each other at barrier `id`.
    Barrier {
        /// Barrier object.
        id: BarrierId,
        /// Whether the barrier is implemented with a condition variable
        /// (recognized via markers, Section III-A); affects only how the
        /// profiler classifies the event for Table III, not its semantics.
        via_cond: bool,
    },
    /// Enter the critical section guarded by mutex `id`.
    Lock {
        /// Mutex object.
        id: MutexId,
    },
    /// Leave the critical section guarded by mutex `id`.
    Unlock {
        /// Mutex object.
        id: MutexId,
    },
    /// Producer side of a condition variable: make `count` items available in
    /// `queue` and broadcast.
    Produce {
        /// Queue (condition variable) identifier.
        queue: QueueId,
        /// Number of items produced.
        count: u32,
    },
    /// Consumer side of a condition variable: take one item from `queue`,
    /// waiting if none is available (this is the paper's `CondMarker` — the
    /// *possibility* of waiting).
    Consume {
        /// Queue (condition variable) identifier.
        queue: QueueId,
    },
    /// Acquire reader-writer lock `id` (`pthread_rwlock_rdlock` /
    /// `wrlock`). Readers share the lock; a writer is exclusive. Grants are
    /// FIFO by arrival (writers are not starved by late readers).
    ///
    /// Trace-format version 2.
    RwLock {
        /// Reader-writer lock object.
        id: RwLockId,
        /// `true` for a writer (exclusive) acquisition.
        write: bool,
    },
    /// Release reader-writer lock `id` (one reader share, or the writer).
    ///
    /// Trace-format version 2.
    RwUnlock {
        /// Reader-writer lock object.
        id: RwLockId,
    },
    /// Decrement semaphore `id` (`sem_wait`), blocking while its count is
    /// zero.
    ///
    /// Trace-format version 2.
    SemWait {
        /// Semaphore object.
        id: SemId,
    },
    /// Increment semaphore `id` by `count` (`sem_post`), waking blocked
    /// waiters.
    ///
    /// Trace-format version 2.
    SemPost {
        /// Semaphore object.
        id: SemId,
        /// Number of permits released.
        count: u32,
    },
}

impl SyncOp {
    /// Whether this event can block the executing thread.
    pub fn may_block(&self) -> bool {
        !matches!(
            self,
            SyncOp::Create { .. }
                | SyncOp::Unlock { .. }
                | SyncOp::Produce { .. }
                | SyncOp::RwUnlock { .. }
                | SyncOp::SemPost { .. }
        )
    }

    /// Paper-taxonomy category used for Table III accounting.
    pub fn category(&self) -> SyncCategory {
        match self {
            SyncOp::Lock { .. }
            | SyncOp::Unlock { .. }
            | SyncOp::RwLock { .. }
            | SyncOp::RwUnlock { .. } => SyncCategory::CriticalSection,
            SyncOp::Barrier {
                via_cond: false, ..
            } => SyncCategory::Barrier,
            SyncOp::Barrier { via_cond: true, .. } => SyncCategory::CondVar,
            SyncOp::Produce { .. }
            | SyncOp::Consume { .. }
            | SyncOp::SemWait { .. }
            | SyncOp::SemPost { .. } => SyncCategory::CondVar,
            SyncOp::Create { .. } | SyncOp::Join { .. } => SyncCategory::ThreadMgmt,
        }
    }

    /// Minimum trace-format version able to carry this event: version 1
    /// for the paper's original event set, version 2 for reader-writer
    /// locks and semaphores.
    pub fn min_format_version(&self) -> u32 {
        match self {
            SyncOp::RwLock { .. }
            | SyncOp::RwUnlock { .. }
            | SyncOp::SemWait { .. }
            | SyncOp::SemPost { .. } => 2,
            _ => 1,
        }
    }
}

impl std::fmt::Display for SyncOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SyncOp::Create { child } => write!(f, "create({child})"),
            SyncOp::Join { child } => write!(f, "join({child})"),
            SyncOp::Barrier { id, via_cond } => {
                if *via_cond {
                    write!(f, "barrier({id}, cond)")
                } else {
                    write!(f, "barrier({id})")
                }
            }
            SyncOp::Lock { id } => write!(f, "lock({id})"),
            SyncOp::Unlock { id } => write!(f, "unlock({id})"),
            SyncOp::Produce { queue, count } => write!(f, "produce({queue}, {count})"),
            SyncOp::Consume { queue } => write!(f, "consume({queue})"),
            SyncOp::RwLock { id, write } => {
                if *write {
                    write!(f, "rwlock({id}, write)")
                } else {
                    write!(f, "rwlock({id}, read)")
                }
            }
            SyncOp::RwUnlock { id } => write!(f, "rwunlock({id})"),
            SyncOp::SemWait { id } => write!(f, "sem_wait({id})"),
            SyncOp::SemPost { id, count } => write!(f, "sem_post({id}, {count})"),
        }
    }
}

/// Synchronization categories as reported in Table III of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SyncCategory {
    /// Critical sections (`pthread_mutex_lock`/`unlock` pairs).
    CriticalSection,
    /// Barriers (`gomp_team_barrier_wait`, `pthread_barrier_wait`).
    Barrier,
    /// Condition variables (waits/broadcasts/markers).
    CondVar,
    /// Thread creation and joining (not reported in Table III).
    ThreadMgmt,
}

impl std::fmt::Display for SyncCategory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            SyncCategory::CriticalSection => "critical section",
            SyncCategory::Barrier => "barrier",
            SyncCategory::CondVar => "condition variable",
            SyncCategory::ThreadMgmt => "thread management",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_conversions_round_trip() {
        let t: ThreadId = 3u32.into();
        assert_eq!(u32::from(t), 3);
        assert_eq!(t.index(), 3);
        assert_eq!(format!("{t}"), "T3");
    }

    #[test]
    fn blocking_classification() {
        assert!(SyncOp::Join { child: ThreadId(1) }.may_block());
        assert!(SyncOp::Barrier {
            id: BarrierId(0),
            via_cond: false
        }
        .may_block());
        assert!(SyncOp::Lock { id: MutexId(0) }.may_block());
        assert!(SyncOp::Consume { queue: QueueId(0) }.may_block());
        assert!(!SyncOp::Unlock { id: MutexId(0) }.may_block());
        assert!(!SyncOp::Create { child: ThreadId(1) }.may_block());
        assert!(!SyncOp::Produce {
            queue: QueueId(0),
            count: 1
        }
        .may_block());
    }

    #[test]
    fn table3_categories() {
        assert_eq!(
            SyncOp::Lock { id: MutexId(0) }.category(),
            SyncCategory::CriticalSection
        );
        assert_eq!(
            SyncOp::Barrier {
                id: BarrierId(0),
                via_cond: false
            }
            .category(),
            SyncCategory::Barrier
        );
        assert_eq!(
            SyncOp::Barrier {
                id: BarrierId(0),
                via_cond: true
            }
            .category(),
            SyncCategory::CondVar
        );
        assert_eq!(
            SyncOp::Consume { queue: QueueId(0) }.category(),
            SyncCategory::CondVar
        );
        assert_eq!(
            SyncOp::Create { child: ThreadId(1) }.category(),
            SyncCategory::ThreadMgmt
        );
    }

    #[test]
    fn display_nonempty() {
        let ops = [
            SyncOp::Create { child: ThreadId(1) },
            SyncOp::Join { child: ThreadId(1) },
            SyncOp::Barrier {
                id: BarrierId(2),
                via_cond: true,
            },
            SyncOp::Lock { id: MutexId(3) },
            SyncOp::Unlock { id: MutexId(3) },
            SyncOp::Produce {
                queue: QueueId(4),
                count: 2,
            },
            SyncOp::Consume { queue: QueueId(4) },
            SyncOp::RwLock {
                id: RwLockId(5),
                write: false,
            },
            SyncOp::RwLock {
                id: RwLockId(5),
                write: true,
            },
            SyncOp::RwUnlock { id: RwLockId(5) },
            SyncOp::SemWait { id: SemId(6) },
            SyncOp::SemPost {
                id: SemId(6),
                count: 2,
            },
        ];
        for op in ops {
            assert!(!format!("{op}").is_empty());
        }
    }

    #[test]
    fn v2_ops_classified() {
        let rd = SyncOp::RwLock {
            id: RwLockId(0),
            write: false,
        };
        let wr = SyncOp::RwLock {
            id: RwLockId(0),
            write: true,
        };
        let un = SyncOp::RwUnlock { id: RwLockId(0) };
        let sw = SyncOp::SemWait { id: SemId(0) };
        let sp = SyncOp::SemPost {
            id: SemId(0),
            count: 1,
        };
        assert!(rd.may_block() && wr.may_block() && sw.may_block());
        assert!(!un.may_block() && !sp.may_block());
        assert_eq!(rd.category(), SyncCategory::CriticalSection);
        assert_eq!(un.category(), SyncCategory::CriticalSection);
        assert_eq!(sw.category(), SyncCategory::CondVar);
        assert_eq!(sp.category(), SyncCategory::CondVar);
        for op in [rd, wr, un, sw, sp] {
            assert_eq!(op.min_format_version(), 2);
        }
        assert_eq!(
            SyncOp::Lock { id: MutexId(0) }.min_format_version(),
            1,
            "original event set stays version 1"
        );
    }

    #[test]
    fn serde_round_trip() {
        let op = SyncOp::Produce {
            queue: QueueId(9),
            count: 3,
        };
        let json = serde_json::to_string(&op).unwrap();
        let back: SyncOp = serde_json::from_str(&json).unwrap();
        assert_eq!(op, back);
    }
}

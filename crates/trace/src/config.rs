//! Target multicore machine description.
//!
//! [`MachineConfig`] is shared by the golden-reference simulator
//! (`rppm-sim`) and the analytical model (`rppm-core`): both consume exactly
//! the same architectural parameters, and nothing else, mirroring the paper's
//! methodology where Sniper and RPPM are configured from the same tables.
//!
//! The five design points of Table IV (constant peak throughput of
//! 10 billion operations per second) are provided via [`DesignPoint`].

use serde::{Deserialize, Serialize};

/// Geometry and latency of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CacheGeometry {
    /// Capacity in bytes.
    pub size_bytes: u64,
    /// Associativity (ways per set).
    pub assoc: u32,
    /// Line size in bytes.
    pub line_bytes: u32,
    /// Access (hit) latency in cycles.
    pub latency: u32,
}

impl CacheGeometry {
    /// Creates a geometry; sizes in bytes.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is zero or the configuration has no sets.
    pub fn new(size_bytes: u64, assoc: u32, line_bytes: u32, latency: u32) -> Self {
        assert!(size_bytes > 0 && assoc > 0 && line_bytes > 0);
        let g = CacheGeometry {
            size_bytes,
            assoc,
            line_bytes,
            latency,
        };
        assert!(g.sets() > 0, "cache must have at least one set");
        g
    }

    /// Number of sets.
    pub fn sets(&self) -> u64 {
        self.size_bytes / (self.assoc as u64 * self.line_bytes as u64)
    }

    /// Total capacity in lines.
    pub fn lines(&self) -> u64 {
        self.size_bytes / self.line_bytes as u64
    }
}

/// Functional-unit (issue-port) counts per class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FuConfig {
    /// Simple integer ALUs.
    pub int_alu: u32,
    /// Integer multiply/divide units.
    pub int_mul: u32,
    /// Floating-point units (add + mul pipes).
    pub fp: u32,
    /// Load/store ports.
    pub mem: u32,
    /// Branch units.
    pub branch: u32,
}

impl FuConfig {
    /// The standard width-derived port mix used by every Table IV design
    /// point and by the DSE core axis: one ALU per dispatch slot, one
    /// multiplier per three slots, and one FP/memory/branch port per two
    /// slots (each class at least one port).
    pub fn scaled(width: u32) -> Self {
        FuConfig {
            int_alu: width.max(1),
            int_mul: (width / 3).max(1),
            fp: (width / 2).max(1),
            mem: (width / 2).max(1),
            branch: (width / 2).max(1),
        }
    }
}

/// Branch predictor specification (a 4 KB tournament predictor in the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BranchPredictorConfig {
    /// Total 2-bit-counter budget in bytes (split across tables).
    pub size_bytes: u32,
    /// Global-history length in bits used by the gshare component.
    pub history_bits: u32,
}

impl BranchPredictorConfig {
    /// The paper's 4 KB tournament predictor.
    pub fn tournament_4kb() -> Self {
        BranchPredictorConfig {
            size_bytes: 4096,
            history_bits: 12,
        }
    }

    /// Entries per component table (three tables: bimodal, gshare, chooser;
    /// 2-bit counters, so 4 counters per byte).
    pub fn table_entries(&self) -> u32 {
        ((self.size_bytes * 4) / 3).next_power_of_two() / 2
    }
}

/// Full multicore machine description.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MachineConfig {
    /// Human-readable configuration name.
    pub name: String,
    /// Core count (RPPM assumes one thread per core).
    pub cores: u32,
    /// Clock frequency in GHz.
    pub freq_ghz: f64,
    /// Dispatch (front-end) width in micro-ops per cycle.
    pub dispatch_width: u32,
    /// Reorder-buffer capacity in micro-ops.
    pub rob_size: u32,
    /// Issue-queue capacity in micro-ops.
    pub issue_queue: u32,
    /// Front-end pipeline depth: refill penalty after a mispredicted branch,
    /// in cycles.
    pub frontend_depth: u32,
    /// Functional-unit counts.
    pub fu: FuConfig,
    /// Branch predictor.
    pub bpred: BranchPredictorConfig,
    /// Private L1 instruction cache.
    pub l1i: CacheGeometry,
    /// Private L1 data cache.
    pub l1d: CacheGeometry,
    /// Private unified L2.
    pub l2: CacheGeometry,
    /// Shared last-level cache.
    pub l3: CacheGeometry,
    /// Main-memory access latency in nanoseconds (frequency-independent;
    /// the cycle cost scales with `freq_ghz`).
    pub mem_latency_ns: f64,
    /// Miss-status-holding registers per core: bound on overlapping memory
    /// misses (memory-level parallelism).
    pub mshrs: u32,
    /// Extra latency in cycles for a cache line transferred from another
    /// core's private cache (coherence intervention).
    pub coherence_latency: u32,
    /// Fixed cost in cycles of executing a synchronization library call
    /// (lock, unlock, barrier arrival, condition-variable operation).
    pub sync_overhead_cycles: u32,
    /// Latency in cycles from a `pthread_create`-style call to the child
    /// thread starting to execute.
    pub spawn_latency_cycles: u32,
}

impl MachineConfig {
    /// Main-memory latency in cycles at this configuration's frequency.
    pub fn mem_latency_cycles(&self) -> f64 {
        self.mem_latency_ns * self.freq_ghz
    }

    /// Converts a cycle count into seconds.
    pub fn cycles_to_seconds(&self, cycles: f64) -> f64 {
        cycles / (self.freq_ghz * 1e9)
    }

    /// Peak throughput in micro-ops per second.
    pub fn peak_ops_per_second(&self) -> f64 {
        self.dispatch_width as f64 * self.freq_ghz * 1e9
    }

    /// FU ports available for the given op class.
    pub fn ports_for(&self, class: crate::op::OpClass) -> u32 {
        use crate::op::OpClass;
        match class {
            OpClass::IntAlu => self.fu.int_alu,
            OpClass::IntMul | OpClass::IntDiv => self.fu.int_mul,
            OpClass::FpAdd | OpClass::FpMul | OpClass::FpDiv => self.fu.fp,
            OpClass::Load | OpClass::Store => self.fu.mem,
            OpClass::Branch => self.fu.branch,
        }
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a message describing the first inconsistency.
    pub fn validate(&self) -> Result<(), String> {
        if self.cores == 0 {
            return Err("core count must be positive".into());
        }
        if self.dispatch_width == 0 {
            return Err("dispatch width must be positive".into());
        }
        if self.rob_size < self.dispatch_width {
            return Err("ROB must hold at least one dispatch group".into());
        }
        if self.freq_ghz <= 0.0 {
            return Err("frequency must be positive".into());
        }
        if self.mshrs == 0 {
            return Err("at least one MSHR is required".into());
        }
        if self.l1d.line_bytes != self.l2.line_bytes || self.l2.line_bytes != self.l3.line_bytes {
            return Err("cache levels must share a line size".into());
        }
        Ok(())
    }

    /// Starts a builder seeded from the paper's base configuration with the
    /// given name. Every parameter can then be overridden; [`MachineConfigBuilder::build`]
    /// validates the result (see its docs for the rules) instead of letting
    /// an inconsistent configuration reach the model.
    pub fn builder(name: &str) -> MachineConfigBuilder {
        let mut cfg = DesignPoint::Base.config();
        cfg.name = name.to_string();
        MachineConfigBuilder { cfg }
    }

    /// Reopens this configuration as a builder (e.g. to derive a variant).
    pub fn to_builder(&self) -> MachineConfigBuilder {
        MachineConfigBuilder { cfg: self.clone() }
    }
}

/// Validating constructor for [`MachineConfig`].
///
/// Obtained from [`MachineConfig::builder`] (seeded from the base design
/// point) or [`MachineConfig::to_builder`] (seeded from an existing
/// configuration). Setters override individual parameters;
/// [`MachineConfigBuilder::build`] is the only exit and refuses
/// configurations the engines cannot sensibly run:
///
/// * everything [`MachineConfig::validate`] checks (positive core count,
///   width, frequency, MSHRs; ROB at least one dispatch group; uniform line
///   size across cache levels), plus
/// * nonzero functional-unit counts in every class,
/// * power-of-two cache geometry (line size and set count) at every level,
/// * a nonzero issue queue and branch-predictor budget.
#[derive(Debug, Clone)]
pub struct MachineConfigBuilder {
    cfg: MachineConfig,
}

impl MachineConfigBuilder {
    /// Sets the configuration name.
    pub fn name(mut self, name: &str) -> Self {
        self.cfg.name = name.to_string();
        self
    }

    /// Sets the core count.
    pub fn cores(mut self, cores: u32) -> Self {
        self.cfg.cores = cores;
        self
    }

    /// Sets the clock frequency in GHz.
    pub fn freq_ghz(mut self, freq_ghz: f64) -> Self {
        self.cfg.freq_ghz = freq_ghz;
        self
    }

    /// Sets the dispatch width **and** rescales the functional-unit mix to
    /// the standard width-derived ports ([`FuConfig::scaled`]). Call
    /// [`MachineConfigBuilder::fu`] afterwards to pin an explicit mix.
    pub fn dispatch_width(mut self, width: u32) -> Self {
        self.cfg.dispatch_width = width;
        self.cfg.fu = FuConfig::scaled(width);
        self
    }

    /// Sets the reorder-buffer capacity.
    pub fn rob_size(mut self, rob: u32) -> Self {
        self.cfg.rob_size = rob;
        self
    }

    /// Sets the issue-queue capacity.
    pub fn issue_queue(mut self, iq: u32) -> Self {
        self.cfg.issue_queue = iq;
        self
    }

    /// Sets the front-end pipeline depth (misprediction refill penalty).
    pub fn frontend_depth(mut self, depth: u32) -> Self {
        self.cfg.frontend_depth = depth;
        self
    }

    /// Pins an explicit functional-unit mix.
    pub fn fu(mut self, fu: FuConfig) -> Self {
        self.cfg.fu = fu;
        self
    }

    /// Sets the branch predictor.
    pub fn bpred(mut self, bpred: BranchPredictorConfig) -> Self {
        self.cfg.bpred = bpred;
        self
    }

    /// Sets the L1 instruction cache geometry.
    pub fn l1i(mut self, g: CacheGeometry) -> Self {
        self.cfg.l1i = g;
        self
    }

    /// Sets the L1 data cache geometry.
    pub fn l1d(mut self, g: CacheGeometry) -> Self {
        self.cfg.l1d = g;
        self
    }

    /// Sets the private L2 geometry.
    pub fn l2(mut self, g: CacheGeometry) -> Self {
        self.cfg.l2 = g;
        self
    }

    /// Sets the shared L3 geometry.
    pub fn l3(mut self, g: CacheGeometry) -> Self {
        self.cfg.l3 = g;
        self
    }

    /// Sets the main-memory latency in nanoseconds.
    pub fn mem_latency_ns(mut self, ns: f64) -> Self {
        self.cfg.mem_latency_ns = ns;
        self
    }

    /// Sets the MSHR count (memory-level-parallelism bound).
    pub fn mshrs(mut self, mshrs: u32) -> Self {
        self.cfg.mshrs = mshrs;
        self
    }

    /// Sets the coherence intervention latency in cycles.
    pub fn coherence_latency(mut self, cycles: u32) -> Self {
        self.cfg.coherence_latency = cycles;
        self
    }

    /// Sets the synchronization-call overhead in cycles.
    pub fn sync_overhead_cycles(mut self, cycles: u32) -> Self {
        self.cfg.sync_overhead_cycles = cycles;
        self
    }

    /// Sets the thread-spawn latency in cycles.
    pub fn spawn_latency_cycles(mut self, cycles: u32) -> Self {
        self.cfg.spawn_latency_cycles = cycles;
        self
    }

    /// Validates and returns the configuration.
    ///
    /// # Errors
    ///
    /// Returns a message describing the first inconsistency (see the type
    /// docs for the full rule set).
    pub fn build(self) -> Result<MachineConfig, String> {
        let c = self.cfg;
        for (class, ports) in [
            ("int_alu", c.fu.int_alu),
            ("int_mul", c.fu.int_mul),
            ("fp", c.fu.fp),
            ("mem", c.fu.mem),
            ("branch", c.fu.branch),
        ] {
            if ports == 0 {
                return Err(format!(
                    "functional-unit class {class} needs at least one port"
                ));
            }
        }
        if c.issue_queue == 0 {
            return Err("issue queue must be positive".into());
        }
        if c.bpred.size_bytes == 0 {
            return Err("branch predictor budget must be positive".into());
        }
        for (level, g) in [("l1i", c.l1i), ("l1d", c.l1d), ("l2", c.l2), ("l3", c.l3)] {
            if g.size_bytes == 0 || g.assoc == 0 || g.line_bytes == 0 {
                return Err(format!("{level} geometry must be nonzero"));
            }
            if !g.line_bytes.is_power_of_two() {
                return Err(format!(
                    "{level} line size {} is not a power of two",
                    g.line_bytes
                ));
            }
            let sets = g.sets();
            if sets == 0 || !sets.is_power_of_two() {
                return Err(format!(
                    "{level} has {sets} sets ({} B / ({} ways × {} B lines)): \
                     set count must be a nonzero power of two",
                    g.size_bytes, g.assoc, g.line_bytes
                ));
            }
        }
        c.validate()?;
        Ok(c)
    }
}

/// The five design points of Table IV.
///
/// All five deliver the same peak performance (10 billion operations per
/// second): frequency shrinks as the pipeline widens.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DesignPoint {
    /// 5.00 GHz, 2-wide, 32-entry ROB.
    Smallest,
    /// 3.33 GHz, 3-wide, 72-entry ROB.
    Small,
    /// 2.50 GHz, 4-wide, 128-entry ROB (the paper's base configuration).
    Base,
    /// 2.00 GHz, 5-wide, 200-entry ROB.
    Big,
    /// 1.66 GHz, 6-wide, 288-entry ROB.
    Biggest,
}

impl DesignPoint {
    /// All design points, smallest to biggest.
    pub const ALL: [DesignPoint; 5] = [
        DesignPoint::Smallest,
        DesignPoint::Small,
        DesignPoint::Base,
        DesignPoint::Big,
        DesignPoint::Biggest,
    ];

    /// Materializes the configuration for a quad-core machine (the paper's
    /// evaluation setup).
    pub fn config(self) -> MachineConfig {
        self.config_with_cores(4)
    }

    /// Materializes the configuration with an arbitrary core count.
    pub fn config_with_cores(self, cores: u32) -> MachineConfig {
        let (name, freq, width, rob, iq) = match self {
            DesignPoint::Smallest => ("smallest", 5.00, 2u32, 32u32, 16u32),
            DesignPoint::Small => ("small", 3.33, 3, 72, 36),
            DesignPoint::Base => ("base", 2.50, 4, 128, 64),
            DesignPoint::Big => ("big", 2.00, 5, 200, 100),
            DesignPoint::Biggest => ("biggest", 1.66, 6, 288, 144),
        };
        MachineConfig {
            name: name.to_string(),
            cores,
            freq_ghz: freq,
            dispatch_width: width,
            rob_size: rob,
            issue_queue: iq,
            frontend_depth: 6,
            fu: FuConfig::scaled(width),
            bpred: BranchPredictorConfig::tournament_4kb(),
            l1i: CacheGeometry::new(32 * 1024, 4, 64, 3),
            l1d: CacheGeometry::new(32 * 1024, 4, 64, 3),
            l2: CacheGeometry::new(256 * 1024, 8, 64, 12),
            l3: CacheGeometry::new(8 * 1024 * 1024, 16, 64, 35),
            mem_latency_ns: 80.0,
            mshrs: 10,
            coherence_latency: 40,
            sync_overhead_cycles: 40,
            spawn_latency_cycles: 1500,
        }
    }
}

impl std::fmt::Display for DesignPoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            DesignPoint::Smallest => "smallest",
            DesignPoint::Small => "small",
            DesignPoint::Base => "base",
            DesignPoint::Big => "big",
            DesignPoint::Biggest => "biggest",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_design_points_validate() {
        for dp in DesignPoint::ALL {
            let c = dp.config();
            assert!(c.validate().is_ok(), "{dp} invalid");
        }
    }

    #[test]
    fn peak_throughput_is_constant_across_design_points() {
        // Table IV: every configuration can execute 10 G ops/s (±1% for the
        // rounded 3.33/1.66 GHz figures).
        for dp in DesignPoint::ALL {
            let c = dp.config();
            let peak = c.peak_ops_per_second();
            assert!((peak - 1e10).abs() / 1e10 < 0.01, "{dp}: peak {peak}");
        }
    }

    #[test]
    fn base_matches_table_iv() {
        let c = DesignPoint::Base.config();
        assert_eq!(c.dispatch_width, 4);
        assert_eq!(c.rob_size, 128);
        assert_eq!(c.issue_queue, 64);
        assert!((c.freq_ghz - 2.5).abs() < 1e-9);
        assert_eq!(c.l1d.size_bytes, 32 * 1024);
        assert_eq!(c.l1d.assoc, 4);
        assert_eq!(c.l2.size_bytes, 256 * 1024);
        assert_eq!(c.l2.assoc, 8);
        assert_eq!(c.l3.size_bytes, 8 * 1024 * 1024);
        assert_eq!(c.l3.assoc, 16);
        assert_eq!(c.bpred.size_bytes, 4096);
        assert_eq!(c.cores, 4);
    }

    #[test]
    fn mem_latency_scales_with_frequency() {
        let fast = DesignPoint::Smallest.config();
        let slow = DesignPoint::Biggest.config();
        assert!(fast.mem_latency_cycles() > slow.mem_latency_cycles());
        assert!((fast.mem_latency_cycles() - 400.0).abs() < 1e-9);
    }

    #[test]
    fn cycles_to_seconds_inverts_frequency() {
        let c = DesignPoint::Base.config();
        let s = c.cycles_to_seconds(2.5e9);
        assert!((s - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cache_geometry_sets_and_lines() {
        let g = CacheGeometry::new(32 * 1024, 4, 64, 3);
        assert_eq!(g.sets(), 128);
        assert_eq!(g.lines(), 512);
    }

    #[test]
    #[should_panic]
    fn zero_size_cache_panics() {
        CacheGeometry::new(0, 4, 64, 1);
    }

    #[test]
    fn validation_catches_bad_configs() {
        let mut c = DesignPoint::Base.config();
        c.mshrs = 0;
        assert!(c.validate().is_err());

        let mut c = DesignPoint::Base.config();
        c.rob_size = 1;
        assert!(c.validate().is_err());

        let mut c = DesignPoint::Base.config();
        c.l2.line_bytes = 32;
        assert!(c.validate().is_err());
    }

    #[test]
    fn predictor_tables_are_pow2() {
        let b = BranchPredictorConfig::tournament_4kb();
        let e = b.table_entries();
        assert!(e.is_power_of_two());
        assert!(e >= 1024);
    }

    #[test]
    fn ports_for_covers_all_classes() {
        use crate::op::OpClass;
        let c = DesignPoint::Base.config();
        for class in OpClass::ALL {
            assert!(c.ports_for(class) >= 1);
        }
    }

    #[test]
    fn builder_reproduces_design_points() {
        // Rebuilding each preset through the builder (same parameters) is
        // the identity — the builder adds validation, not behaviour.
        for dp in DesignPoint::ALL {
            let c = dp.config();
            assert_eq!(c.to_builder().build().expect("preset validates"), c);
        }
        let derived = MachineConfig::builder("wide")
            .dispatch_width(6)
            .rob_size(288)
            .issue_queue(144)
            .freq_ghz(1.66)
            .build()
            .expect("valid");
        assert_eq!(derived.name, "wide");
        assert_eq!(derived.fu, FuConfig::scaled(6));
        assert_eq!(derived.l1d, DesignPoint::Base.config().l1d);
    }

    #[test]
    fn builder_rejects_bad_geometry() {
        // Non-power-of-two set count.
        let bad = MachineConfig::builder("bad").l1d(CacheGeometry {
            size_bytes: 48 * 1024,
            assoc: 4,
            line_bytes: 64,
            latency: 3,
        });
        let err = bad.build().unwrap_err();
        assert!(err.contains("power of two"), "{err}");

        let err = MachineConfig::builder("bad")
            .fu(FuConfig {
                int_alu: 4,
                int_mul: 0,
                fp: 2,
                mem: 2,
                branch: 2,
            })
            .build()
            .unwrap_err();
        assert!(err.contains("int_mul"), "{err}");

        // The base validate() rules still apply through the builder.
        let err = MachineConfig::builder("bad").mshrs(0).build().unwrap_err();
        assert!(err.contains("MSHR"), "{err}");
    }

    #[test]
    fn scaled_fu_matches_table_iv_derivation() {
        for dp in DesignPoint::ALL {
            let c = dp.config();
            assert_eq!(c.fu, FuConfig::scaled(c.dispatch_width));
        }
    }

    #[test]
    fn serde_round_trip() {
        let c = DesignPoint::Big.config();
        let json = serde_json::to_string(&c).unwrap();
        let back: MachineConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(c, back);
    }
}

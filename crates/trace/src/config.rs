//! Target multicore machine description.
//!
//! [`MachineConfig`] is shared by the golden-reference simulator
//! (`rppm-sim`) and the analytical model (`rppm-core`): both consume exactly
//! the same architectural parameters, and nothing else, mirroring the paper's
//! methodology where Sniper and RPPM are configured from the same tables.
//!
//! The five design points of Table IV (constant peak throughput of
//! 10 billion operations per second) are provided via [`DesignPoint`].

use serde::{Deserialize, Serialize};

/// Geometry and latency of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CacheGeometry {
    /// Capacity in bytes.
    pub size_bytes: u64,
    /// Associativity (ways per set).
    pub assoc: u32,
    /// Line size in bytes.
    pub line_bytes: u32,
    /// Access (hit) latency in cycles.
    pub latency: u32,
}

impl CacheGeometry {
    /// Creates a geometry; sizes in bytes.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is zero or the configuration has no sets.
    pub fn new(size_bytes: u64, assoc: u32, line_bytes: u32, latency: u32) -> Self {
        assert!(size_bytes > 0 && assoc > 0 && line_bytes > 0);
        let g = CacheGeometry {
            size_bytes,
            assoc,
            line_bytes,
            latency,
        };
        assert!(g.sets() > 0, "cache must have at least one set");
        g
    }

    /// Number of sets.
    pub fn sets(&self) -> u64 {
        self.size_bytes / (self.assoc as u64 * self.line_bytes as u64)
    }

    /// Total capacity in lines.
    pub fn lines(&self) -> u64 {
        self.size_bytes / self.line_bytes as u64
    }
}

/// Functional-unit (issue-port) counts per class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FuConfig {
    /// Simple integer ALUs.
    pub int_alu: u32,
    /// Integer multiply/divide units.
    pub int_mul: u32,
    /// Floating-point units (add + mul pipes).
    pub fp: u32,
    /// Load/store ports.
    pub mem: u32,
    /// Branch units.
    pub branch: u32,
}

/// Branch predictor specification (a 4 KB tournament predictor in the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BranchPredictorConfig {
    /// Total 2-bit-counter budget in bytes (split across tables).
    pub size_bytes: u32,
    /// Global-history length in bits used by the gshare component.
    pub history_bits: u32,
}

impl BranchPredictorConfig {
    /// The paper's 4 KB tournament predictor.
    pub fn tournament_4kb() -> Self {
        BranchPredictorConfig {
            size_bytes: 4096,
            history_bits: 12,
        }
    }

    /// Entries per component table (three tables: bimodal, gshare, chooser;
    /// 2-bit counters, so 4 counters per byte).
    pub fn table_entries(&self) -> u32 {
        ((self.size_bytes * 4) / 3).next_power_of_two() / 2
    }
}

/// Full multicore machine description.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MachineConfig {
    /// Human-readable configuration name.
    pub name: String,
    /// Core count (RPPM assumes one thread per core).
    pub cores: u32,
    /// Clock frequency in GHz.
    pub freq_ghz: f64,
    /// Dispatch (front-end) width in micro-ops per cycle.
    pub dispatch_width: u32,
    /// Reorder-buffer capacity in micro-ops.
    pub rob_size: u32,
    /// Issue-queue capacity in micro-ops.
    pub issue_queue: u32,
    /// Front-end pipeline depth: refill penalty after a mispredicted branch,
    /// in cycles.
    pub frontend_depth: u32,
    /// Functional-unit counts.
    pub fu: FuConfig,
    /// Branch predictor.
    pub bpred: BranchPredictorConfig,
    /// Private L1 instruction cache.
    pub l1i: CacheGeometry,
    /// Private L1 data cache.
    pub l1d: CacheGeometry,
    /// Private unified L2.
    pub l2: CacheGeometry,
    /// Shared last-level cache.
    pub l3: CacheGeometry,
    /// Main-memory access latency in nanoseconds (frequency-independent;
    /// the cycle cost scales with `freq_ghz`).
    pub mem_latency_ns: f64,
    /// Miss-status-holding registers per core: bound on overlapping memory
    /// misses (memory-level parallelism).
    pub mshrs: u32,
    /// Extra latency in cycles for a cache line transferred from another
    /// core's private cache (coherence intervention).
    pub coherence_latency: u32,
    /// Fixed cost in cycles of executing a synchronization library call
    /// (lock, unlock, barrier arrival, condition-variable operation).
    pub sync_overhead_cycles: u32,
    /// Latency in cycles from a `pthread_create`-style call to the child
    /// thread starting to execute.
    pub spawn_latency_cycles: u32,
}

impl MachineConfig {
    /// Main-memory latency in cycles at this configuration's frequency.
    pub fn mem_latency_cycles(&self) -> f64 {
        self.mem_latency_ns * self.freq_ghz
    }

    /// Converts a cycle count into seconds.
    pub fn cycles_to_seconds(&self, cycles: f64) -> f64 {
        cycles / (self.freq_ghz * 1e9)
    }

    /// Peak throughput in micro-ops per second.
    pub fn peak_ops_per_second(&self) -> f64 {
        self.dispatch_width as f64 * self.freq_ghz * 1e9
    }

    /// FU ports available for the given op class.
    pub fn ports_for(&self, class: crate::op::OpClass) -> u32 {
        use crate::op::OpClass;
        match class {
            OpClass::IntAlu => self.fu.int_alu,
            OpClass::IntMul | OpClass::IntDiv => self.fu.int_mul,
            OpClass::FpAdd | OpClass::FpMul | OpClass::FpDiv => self.fu.fp,
            OpClass::Load | OpClass::Store => self.fu.mem,
            OpClass::Branch => self.fu.branch,
        }
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a message describing the first inconsistency.
    pub fn validate(&self) -> Result<(), String> {
        if self.cores == 0 {
            return Err("core count must be positive".into());
        }
        if self.dispatch_width == 0 {
            return Err("dispatch width must be positive".into());
        }
        if self.rob_size < self.dispatch_width {
            return Err("ROB must hold at least one dispatch group".into());
        }
        if self.freq_ghz <= 0.0 {
            return Err("frequency must be positive".into());
        }
        if self.mshrs == 0 {
            return Err("at least one MSHR is required".into());
        }
        if self.l1d.line_bytes != self.l2.line_bytes || self.l2.line_bytes != self.l3.line_bytes {
            return Err("cache levels must share a line size".into());
        }
        Ok(())
    }
}

/// The five design points of Table IV.
///
/// All five deliver the same peak performance (10 billion operations per
/// second): frequency shrinks as the pipeline widens.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DesignPoint {
    /// 5.00 GHz, 2-wide, 32-entry ROB.
    Smallest,
    /// 3.33 GHz, 3-wide, 72-entry ROB.
    Small,
    /// 2.50 GHz, 4-wide, 128-entry ROB (the paper's base configuration).
    Base,
    /// 2.00 GHz, 5-wide, 200-entry ROB.
    Big,
    /// 1.66 GHz, 6-wide, 288-entry ROB.
    Biggest,
}

impl DesignPoint {
    /// All design points, smallest to biggest.
    pub const ALL: [DesignPoint; 5] = [
        DesignPoint::Smallest,
        DesignPoint::Small,
        DesignPoint::Base,
        DesignPoint::Big,
        DesignPoint::Biggest,
    ];

    /// Materializes the configuration for a quad-core machine (the paper's
    /// evaluation setup).
    pub fn config(self) -> MachineConfig {
        self.config_with_cores(4)
    }

    /// Materializes the configuration with an arbitrary core count.
    pub fn config_with_cores(self, cores: u32) -> MachineConfig {
        let (name, freq, width, rob, iq) = match self {
            DesignPoint::Smallest => ("smallest", 5.00, 2u32, 32u32, 16u32),
            DesignPoint::Small => ("small", 3.33, 3, 72, 36),
            DesignPoint::Base => ("base", 2.50, 4, 128, 64),
            DesignPoint::Big => ("big", 2.00, 5, 200, 100),
            DesignPoint::Biggest => ("biggest", 1.66, 6, 288, 144),
        };
        MachineConfig {
            name: name.to_string(),
            cores,
            freq_ghz: freq,
            dispatch_width: width,
            rob_size: rob,
            issue_queue: iq,
            frontend_depth: 6,
            fu: FuConfig {
                int_alu: width,
                int_mul: (width / 3).max(1),
                fp: (width / 2).max(1),
                mem: (width / 2).max(1),
                branch: (width / 2).max(1),
            },
            bpred: BranchPredictorConfig::tournament_4kb(),
            l1i: CacheGeometry::new(32 * 1024, 4, 64, 3),
            l1d: CacheGeometry::new(32 * 1024, 4, 64, 3),
            l2: CacheGeometry::new(256 * 1024, 8, 64, 12),
            l3: CacheGeometry::new(8 * 1024 * 1024, 16, 64, 35),
            mem_latency_ns: 80.0,
            mshrs: 10,
            coherence_latency: 40,
            sync_overhead_cycles: 40,
            spawn_latency_cycles: 1500,
        }
    }
}

impl std::fmt::Display for DesignPoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            DesignPoint::Smallest => "smallest",
            DesignPoint::Small => "small",
            DesignPoint::Base => "base",
            DesignPoint::Big => "big",
            DesignPoint::Biggest => "biggest",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_design_points_validate() {
        for dp in DesignPoint::ALL {
            let c = dp.config();
            assert!(c.validate().is_ok(), "{dp} invalid");
        }
    }

    #[test]
    fn peak_throughput_is_constant_across_design_points() {
        // Table IV: every configuration can execute 10 G ops/s (±1% for the
        // rounded 3.33/1.66 GHz figures).
        for dp in DesignPoint::ALL {
            let c = dp.config();
            let peak = c.peak_ops_per_second();
            assert!((peak - 1e10).abs() / 1e10 < 0.01, "{dp}: peak {peak}");
        }
    }

    #[test]
    fn base_matches_table_iv() {
        let c = DesignPoint::Base.config();
        assert_eq!(c.dispatch_width, 4);
        assert_eq!(c.rob_size, 128);
        assert_eq!(c.issue_queue, 64);
        assert!((c.freq_ghz - 2.5).abs() < 1e-9);
        assert_eq!(c.l1d.size_bytes, 32 * 1024);
        assert_eq!(c.l1d.assoc, 4);
        assert_eq!(c.l2.size_bytes, 256 * 1024);
        assert_eq!(c.l2.assoc, 8);
        assert_eq!(c.l3.size_bytes, 8 * 1024 * 1024);
        assert_eq!(c.l3.assoc, 16);
        assert_eq!(c.bpred.size_bytes, 4096);
        assert_eq!(c.cores, 4);
    }

    #[test]
    fn mem_latency_scales_with_frequency() {
        let fast = DesignPoint::Smallest.config();
        let slow = DesignPoint::Biggest.config();
        assert!(fast.mem_latency_cycles() > slow.mem_latency_cycles());
        assert!((fast.mem_latency_cycles() - 400.0).abs() < 1e-9);
    }

    #[test]
    fn cycles_to_seconds_inverts_frequency() {
        let c = DesignPoint::Base.config();
        let s = c.cycles_to_seconds(2.5e9);
        assert!((s - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cache_geometry_sets_and_lines() {
        let g = CacheGeometry::new(32 * 1024, 4, 64, 3);
        assert_eq!(g.sets(), 128);
        assert_eq!(g.lines(), 512);
    }

    #[test]
    #[should_panic]
    fn zero_size_cache_panics() {
        CacheGeometry::new(0, 4, 64, 1);
    }

    #[test]
    fn validation_catches_bad_configs() {
        let mut c = DesignPoint::Base.config();
        c.mshrs = 0;
        assert!(c.validate().is_err());

        let mut c = DesignPoint::Base.config();
        c.rob_size = 1;
        assert!(c.validate().is_err());

        let mut c = DesignPoint::Base.config();
        c.l2.line_bytes = 32;
        assert!(c.validate().is_err());
    }

    #[test]
    fn predictor_tables_are_pow2() {
        let b = BranchPredictorConfig::tournament_4kb();
        let e = b.table_entries();
        assert!(e.is_power_of_two());
        assert!(e >= 1024);
    }

    #[test]
    fn ports_for_covers_all_classes() {
        use crate::op::OpClass;
        let c = DesignPoint::Base.config();
        for class in OpClass::ALL {
            assert!(c.ports_for(class) >= 1);
        }
    }

    #[test]
    fn serde_round_trip() {
        let c = DesignPoint::Big.config();
        let json = serde_json::to_string(&c).unwrap();
        let back: MachineConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(c, back);
    }
}

//! Shared CPI-stack vocabulary.
//!
//! Both the golden-reference simulator and the RPPM model report per-thread
//! cycle breakdowns in terms of the same components, mirroring Figure 5 of
//! the paper (base, branch, I-cache, data-memory by level, synchronization).

use serde::{Deserialize, Serialize};

/// Per-thread cycle breakdown (a CPI stack, in absolute cycles).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct CpiStack {
    /// Useful dispatch/execution cycles (including ILP and FU limits).
    pub base: f64,
    /// Cycles lost to branch mispredictions (resolution + front-end refill).
    pub branch: f64,
    /// Cycles lost to instruction-cache misses.
    pub icache: f64,
    /// Cycles stalled on loads served by the private L2.
    pub mem_l2: f64,
    /// Cycles stalled on loads served by the shared L3.
    pub mem_l3: f64,
    /// Cycles stalled on loads served by main memory (after MLP overlap).
    pub mem_dram: f64,
    /// Idle cycles waiting on synchronization (barriers, critical sections,
    /// condition variables, joins).
    pub sync: f64,
}

impl CpiStack {
    /// Sum of every component.
    pub fn total(&self) -> f64 {
        self.base
            + self.branch
            + self.icache
            + self.mem_l2
            + self.mem_l3
            + self.mem_dram
            + self.sync
    }

    /// Sum of the data-memory components.
    pub fn mem_data(&self) -> f64 {
        self.mem_l2 + self.mem_l3 + self.mem_dram
    }

    /// Component-wise sum.
    pub fn add(&mut self, other: &CpiStack) {
        self.base += other.base;
        self.branch += other.branch;
        self.icache += other.icache;
        self.mem_l2 += other.mem_l2;
        self.mem_l3 += other.mem_l3;
        self.mem_dram += other.mem_dram;
        self.sync += other.sync;
    }

    /// Returns the stack scaled by `k` (e.g. for normalization).
    pub fn scaled(&self, k: f64) -> CpiStack {
        CpiStack {
            base: self.base * k,
            branch: self.branch * k,
            icache: self.icache * k,
            mem_l2: self.mem_l2 * k,
            mem_l3: self.mem_l3 * k,
            mem_dram: self.mem_dram * k,
            sync: self.sync * k,
        }
    }

    /// Component labels in display order (matches [`CpiStack::values`]).
    pub const LABELS: [&'static str; 7] = [
        "base", "branch", "icache", "mem-L2", "mem-L3", "mem-DRAM", "sync",
    ];

    /// Component values in display order (matches [`CpiStack::LABELS`]).
    pub fn values(&self) -> [f64; 7] {
        [
            self.base,
            self.branch,
            self.icache,
            self.mem_l2,
            self.mem_l3,
            self.mem_dram,
            self.sync,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_sums_components() {
        let s = CpiStack {
            base: 1.0,
            branch: 2.0,
            icache: 3.0,
            mem_l2: 4.0,
            mem_l3: 5.0,
            mem_dram: 6.0,
            sync: 7.0,
        };
        assert!((s.total() - 28.0).abs() < 1e-12);
        assert!((s.mem_data() - 15.0).abs() < 1e-12);
    }

    #[test]
    fn add_is_componentwise() {
        let mut a = CpiStack {
            base: 1.0,
            ..Default::default()
        };
        let b = CpiStack {
            branch: 2.0,
            sync: 3.0,
            ..Default::default()
        };
        a.add(&b);
        assert_eq!(a.base, 1.0);
        assert_eq!(a.branch, 2.0);
        assert_eq!(a.sync, 3.0);
    }

    #[test]
    fn scaled_multiplies_everything() {
        let s = CpiStack {
            base: 2.0,
            mem_dram: 4.0,
            ..Default::default()
        };
        let t = s.scaled(0.5);
        assert_eq!(t.base, 1.0);
        assert_eq!(t.mem_dram, 2.0);
        assert_eq!(t.total(), 3.0);
    }

    #[test]
    fn labels_match_values_len() {
        let s = CpiStack::default();
        assert_eq!(CpiStack::LABELS.len(), s.values().len());
    }
}

//! Versioned on-disk trace interchange format.
//!
//! A trace file is the serialized form of a [`Program`]: the same
//! microarchitecture-independent information an external profiler (a
//! Pin-tool, a DynamoRIO client, a hand-written harness) would record from a
//! native execution — per-thread op streams described parametrically, the
//! synchronization-event sequence, address patterns and branch-outcome
//! patterns. Exporting and re-importing a program is lossless: the imported
//! program profiles and predicts bit-identically to the original.
//!
//! # Envelope
//!
//! Every trace file is a JSON object with exactly this envelope:
//!
//! ```json
//! {
//!   "format": "rppm-trace",
//!   "version": 1,
//!   "program": { "name": "...", "threads": [ { "segments": [ ... ] } ] }
//! }
//! ```
//!
//! * `format` must be the literal string `"rppm-trace"`; anything else is
//!   rejected as [`TraceFileError::NotATraceFile`].
//! * `version` is the schema version this file was written with. Importers
//!   accept versions 1 through [`TRACE_VERSION`]; newer files fail with
//!   [`TraceFileError::UnsupportedVersion`] rather than being misread.
//!   Exporters write the *smallest* version able to carry the program
//!   ([`Program::format_version`]), so traces without version-2 events
//!   (reader-writer locks, semaphores) stay byte-identical to what a
//!   version-1 tool would have written.
//! * `program` is the [`Program`] body. Each thread's `segments` hold
//!   `{"Block": {...}}` instruction blocks ([`crate::BlockSpec`], all fields
//!   required) and `{"Sync": {...}}` synchronization events
//!   ([`crate::SyncOp`] variants such as `{"Barrier": {"id": 0,
//!   "via_cond": false}}`).
//!
//! # Versioning policy
//!
//! Within a version the schema only changes additively (new optional
//! content); any change that alters the meaning or shape of existing fields
//! bumps [`TRACE_VERSION`]. Old readers therefore never silently misread new
//! files: they fail with an actionable [`TraceFileError::UnsupportedVersion`].
//!
//! # Example
//!
//! ```
//! use rppm_trace::{export_program, import_program, BlockSpec, ProgramBuilder};
//!
//! let mut b = ProgramBuilder::new("demo", 2);
//! b.spawn_workers();
//! b.thread(1u32).block(BlockSpec::new(1_000, 7).loads(0.2));
//! b.join_workers();
//! let program = b.build();
//!
//! let text = export_program(&program).expect("serializes");
//! let back = import_program(&text).expect("round-trips");
//! assert_eq!(program, back);
//! ```

use crate::program::{Program, ProgramError};
use serde::{Deserialize, Serialize, Value};
use std::path::{Path, PathBuf};

/// The `format` tag every trace file must carry.
pub const TRACE_FORMAT: &str = "rppm-trace";

/// Newest schema version this build understands. [`import_program`]
/// accepts versions `1..=TRACE_VERSION`; [`export_program`] writes the
/// smallest version able to carry the program.
pub const TRACE_VERSION: u32 = 2;

/// Everything that can go wrong exporting or importing a trace file.
///
/// Every variant renders an actionable message: what was wrong, where, and —
/// where it helps — what would have been accepted instead.
#[derive(Debug)]
pub enum TraceFileError {
    /// Reading or writing the file failed.
    Io {
        /// File being accessed.
        path: PathBuf,
        /// Underlying I/O error.
        source: std::io::Error,
    },
    /// The file is not syntactically valid JSON (truncated, mis-quoted, ...).
    Json {
        /// Parser diagnostic.
        detail: String,
    },
    /// The JSON is valid but is not an rppm trace file (wrong or missing
    /// `format` tag, or the top level is not an object).
    NotATraceFile {
        /// What was found instead.
        detail: String,
    },
    /// The file declares a schema version this build cannot read.
    UnsupportedVersion {
        /// Version declared by the file.
        found: u64,
        /// Version this build supports.
        supported: u32,
    },
    /// The `program` body does not match the schema (missing field, unknown
    /// sync-event kind, wrong type, ...).
    Schema {
        /// Deserializer diagnostic.
        detail: String,
    },
    /// The program parsed but violates structural invariants (orphan
    /// threads, unbalanced locks, ...).
    InvalidProgram(ProgramError),
    /// The program cannot be serialized (a non-finite float snuck into a
    /// block specification).
    Unserializable {
        /// Serializer diagnostic.
        detail: String,
    },
    /// A binary trace does not start with the `RPT1` magic bytes.
    BadMagic {
        /// The four bytes actually found.
        found: [u8; 4],
    },
    /// A binary trace ended mid-structure (cut-off section, half a varint,
    /// missing end section, ...).
    Truncated {
        /// What was being read when the stream ran out.
        context: String,
    },
    /// A varint in a binary trace is overlong (more than 10 bytes, or a
    /// tenth byte overflowing 64 bits).
    VarintOverrun {
        /// What was being read when the overrun was detected.
        context: String,
    },
    /// A binary trace is structurally corrupt (unknown tag, count
    /// mismatch, trailing data, out-of-range value, ...).
    Corrupt {
        /// What is wrong.
        detail: String,
    },
    /// A streaming binary read or write failed at the I/O layer (no file
    /// path is available for a generic stream).
    Stream {
        /// What was being transferred.
        context: String,
        /// Underlying I/O error.
        source: std::io::Error,
    },
    /// Replay was requested on a trace that carries no recorded op-stream
    /// sections (a version-1/2 container, or a version-3 container written
    /// without `--ops`).
    NoOpStream {
        /// What the container actually holds.
        detail: String,
    },
}

impl std::fmt::Display for TraceFileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceFileError::Io { path, source } => {
                write!(f, "cannot access trace file `{}`: {source}", path.display())
            }
            TraceFileError::Json { detail } => {
                write!(f, "trace file is not valid JSON: {detail}")
            }
            TraceFileError::NotATraceFile { detail } => write!(
                f,
                "not an rppm trace file ({detail}); expected a JSON object with \
                 \"format\": \"{TRACE_FORMAT}\""
            ),
            TraceFileError::UnsupportedVersion { found, supported } => write!(
                f,
                "trace file uses schema version {found}, but this build reads only \
                 versions 1 through {supported}; re-export the trace with a matching tool"
            ),
            TraceFileError::Schema { detail } => {
                write!(
                    f,
                    "trace file `program` does not match the schema: {detail}"
                )
            }
            TraceFileError::InvalidProgram(e) => {
                write!(f, "trace file parsed but the program is invalid: {e}")
            }
            TraceFileError::Unserializable { detail } => {
                write!(f, "program cannot be serialized: {detail}")
            }
            TraceFileError::BadMagic { found } => write!(
                f,
                "not an RPT1 binary trace: file starts with bytes {found:02X?} instead of \
                 the magic \"RPT1\"; convert the trace with `trace_convert` or export it \
                 with a matching tool"
            ),
            TraceFileError::Truncated { context } => write!(
                f,
                "binary trace is truncated: the stream ended while reading {context}; \
                 the file was cut off mid-write"
            ),
            TraceFileError::VarintOverrun { context } => write!(
                f,
                "binary trace is corrupt: overlong varint while reading {context}; \
                 the bytes at this position are not a valid RPT1 stream"
            ),
            TraceFileError::Corrupt { detail } => {
                write!(f, "binary trace is corrupt: {detail}")
            }
            TraceFileError::Stream { context, source } => {
                write!(f, "binary trace I/O failed while {context}: {source}")
            }
            TraceFileError::NoOpStream { detail } => write!(
                f,
                "trace carries no recorded op stream ({detail}); record one with \
                 `rppm convert --ops` before replaying"
            ),
        }
    }
}

impl std::error::Error for TraceFileError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceFileError::Io { source, .. } | TraceFileError::Stream { source, .. } => {
                Some(source)
            }
            TraceFileError::InvalidProgram(e) => Some(e),
            _ => None,
        }
    }
}

/// Serializes `program` as versioned trace-file text.
///
/// # Errors
///
/// Returns [`TraceFileError::Unserializable`] if the program contains a
/// non-finite float (JSON cannot express it).
pub fn export_program(program: &Program) -> Result<String, TraceFileError> {
    let envelope = Value::Object(vec![
        (
            "format".to_string(),
            Value::String(TRACE_FORMAT.to_string()),
        ),
        (
            "version".to_string(),
            Value::U64(program.format_version() as u64),
        ),
        ("program".to_string(), program.to_value()),
    ]);
    serde_json::to_string(&envelope).map_err(|e| TraceFileError::Unserializable {
        detail: e.to_string(),
    })
}

/// Parses trace-file text back into a validated [`Program`].
///
/// # Errors
///
/// Returns the first failure encountered, in checking order: [`Json`]
/// (syntax), [`NotATraceFile`] (envelope), [`UnsupportedVersion`],
/// [`Schema`] (program body), [`InvalidProgram`] (structural validation).
///
/// [`Json`]: TraceFileError::Json
/// [`NotATraceFile`]: TraceFileError::NotATraceFile
/// [`UnsupportedVersion`]: TraceFileError::UnsupportedVersion
/// [`Schema`]: TraceFileError::Schema
/// [`InvalidProgram`]: TraceFileError::InvalidProgram
pub fn import_program(text: &str) -> Result<Program, TraceFileError> {
    let value: Value = serde_json::from_str(text).map_err(|e| TraceFileError::Json {
        detail: e.to_string(),
    })?;
    let entries = value
        .as_object()
        .ok_or_else(|| TraceFileError::NotATraceFile {
            detail: "top level is not a JSON object".to_string(),
        })?;

    let format = match Value::get(entries, "format") {
        None => {
            return Err(TraceFileError::NotATraceFile {
                detail: "missing field `format`".to_string(),
            })
        }
        Some(v) => v.as_str().ok_or_else(|| TraceFileError::NotATraceFile {
            detail: format!("field `format` must be a string, found {}", json_kind(v)),
        })?,
    };
    if format != TRACE_FORMAT {
        return Err(TraceFileError::NotATraceFile {
            detail: format!("`format` is \"{format}\""),
        });
    }

    let version = match Value::get(entries, "version") {
        None => {
            return Err(TraceFileError::NotATraceFile {
                detail: "missing field `version`".to_string(),
            })
        }
        Some(v) => v.as_u64().ok_or_else(|| TraceFileError::NotATraceFile {
            detail: format!(
                "field `version` must be a non-negative integer, found {}",
                json_kind(v)
            ),
        })?,
    };
    if !(1..=TRACE_VERSION as u64).contains(&version) {
        return Err(TraceFileError::UnsupportedVersion {
            found: version,
            supported: TRACE_VERSION,
        });
    }

    let body = Value::get(entries, "program").ok_or_else(|| TraceFileError::Schema {
        detail: "missing field `program`".to_string(),
    })?;
    let program = Program::from_value(body).map_err(|e| TraceFileError::Schema {
        detail: e.to_string(),
    })?;
    let needs = program.format_version();
    if (needs as u64) > version {
        return Err(TraceFileError::Schema {
            detail: format!(
                "file declares schema version {version} but contains events that require \
                 version {needs} (reader-writer locks or semaphores)"
            ),
        });
    }
    program.validate().map_err(TraceFileError::InvalidProgram)?;
    Ok(program)
}

/// Writes `program` to `path` as a trace file.
///
/// # Errors
///
/// Propagates [`export_program`] failures and I/O errors (with the path).
pub fn write_program(program: &Program, path: impl AsRef<Path>) -> Result<(), TraceFileError> {
    let path = path.as_ref();
    let text = export_program(program)?;
    std::fs::write(path, text).map_err(|source| TraceFileError::Io {
        path: path.to_path_buf(),
        source,
    })
}

/// Reads and validates the trace file at `path`.
///
/// # Errors
///
/// Propagates I/O errors (with the path) and every [`import_program`]
/// failure.
pub fn read_program(path: impl AsRef<Path>) -> Result<Program, TraceFileError> {
    let path = path.as_ref();
    let text = std::fs::read_to_string(path).map_err(|source| TraceFileError::Io {
        path: path.to_path_buf(),
        source,
    })?;
    import_program(&text)
}

/// Human-readable kind of a JSON value, for error messages.
fn json_kind(v: &Value) -> &'static str {
    match v {
        Value::Null => "null",
        Value::Bool(_) => "a boolean",
        Value::U64(_) | Value::I64(_) => "an integer",
        Value::F64(_) => "a float",
        Value::String(_) => "a string",
        Value::Array(_) => "an array",
        Value::Object(_) => "an object",
    }
}

/// Stable content fingerprint of a program (FNV-1a over its serialized
/// value tree). Two programs share a fingerprint exactly when they export
/// identically — used to key profile caches for imported traces.
pub fn program_fingerprint(program: &Program) -> u64 {
    let mut h = Fnv::new();
    hash_value(&program.to_value(), &mut h);
    h.0
}

struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xCBF2_9CE4_8422_2325)
    }

    fn byte(&mut self, b: u8) {
        self.0 ^= b as u64;
        self.0 = self.0.wrapping_mul(0x1_0000_0000_01B3);
    }

    fn bytes(&mut self, bs: &[u8]) {
        for &b in bs {
            self.byte(b);
        }
    }

    fn u64(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }
}

fn hash_value(v: &Value, h: &mut Fnv) {
    match v {
        Value::Null => h.byte(0),
        Value::Bool(b) => {
            h.byte(1);
            h.byte(*b as u8);
        }
        Value::U64(n) => {
            h.byte(2);
            h.u64(*n);
        }
        Value::I64(n) => {
            h.byte(3);
            h.u64(*n as u64);
        }
        Value::F64(n) => {
            h.byte(4);
            h.u64(n.to_bits());
        }
        Value::String(s) => {
            h.byte(5);
            h.u64(s.len() as u64);
            h.bytes(s.as_bytes());
        }
        Value::Array(items) => {
            h.byte(6);
            h.u64(items.len() as u64);
            for item in items {
                hash_value(item, h);
            }
        }
        Value::Object(entries) => {
            h.byte(7);
            h.u64(entries.len() as u64);
            for (k, val) in entries {
                h.u64(k.len() as u64);
                h.bytes(k.as_bytes());
                hash_value(val, h);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::BlockSpec;
    use crate::builder::ProgramBuilder;
    use crate::pattern::AddressPattern;

    fn sample() -> Program {
        let mut b = ProgramBuilder::new("sample", 3);
        let r = b.alloc_region(2048);
        let bar = b.alloc_barrier();
        let m = b.alloc_mutex();
        let q = b.alloc_queue();
        b.spawn_workers();
        b.thread(0u32).produce(q, 2);
        for t in 1..3u32 {
            b.thread(t)
                .consume(q)
                .block(
                    BlockSpec::new(500, 9 + t as u64)
                        .loads(0.3)
                        .branches(0.1)
                        .addr(AddressPattern::hot(r, 64, 0.8), 1.0),
                )
                .lock(m)
                .block(BlockSpec::new(32, 1))
                .unlock(m)
                .barrier(bar);
        }
        b.join_workers();
        b.build()
    }

    #[test]
    fn export_import_round_trips() {
        let p = sample();
        let text = export_program(&p).unwrap();
        let back = import_program(&text).unwrap();
        assert_eq!(p, back);
        // Re-exporting the import is byte-identical (canonical form).
        assert_eq!(text, export_program(&back).unwrap());
    }

    #[test]
    fn envelope_carries_format_and_version() {
        // A program without version-2 events is written as version 1, so
        // existing traces stay byte-identical across the format bump.
        let text = export_program(&sample()).unwrap();
        assert!(text.starts_with(&format!("{{\"format\":\"{TRACE_FORMAT}\",\"version\":1,")));
    }

    fn sample_v2() -> Program {
        let mut b = crate::builder::ProgramBuilder::new("v2-demo", 2);
        let rw = b.alloc_rwlock();
        let s = b.alloc_sem();
        b.spawn_workers();
        b.thread(0u32)
            .rw_lock(rw, true)
            .block(BlockSpec::new(100, 3))
            .rw_unlock(rw)
            .sem_post(s, 1);
        b.thread(1u32).sem_wait(s).rw_lock(rw, false).rw_unlock(rw);
        b.join_workers();
        b.build()
    }

    #[test]
    fn v2_programs_round_trip_at_version_2() {
        let p = sample_v2();
        let text = export_program(&p).unwrap();
        assert!(text.starts_with(&format!("{{\"format\":\"{TRACE_FORMAT}\",\"version\":2,")));
        let back = import_program(&text).unwrap();
        assert_eq!(p, back);
    }

    #[test]
    fn v2_events_in_v1_file_are_rejected() {
        let p = sample_v2();
        let text = export_program(&p).unwrap();
        let lied = text.replacen("\"version\":2", "\"version\":1", 1);
        let err = import_program(&lied).unwrap_err();
        assert!(matches!(err, TraceFileError::Schema { .. }), "{err}");
        assert!(err.to_string().contains("version 2"), "{err}");
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("rppm-trace-file-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sample.json");
        let p = sample();
        write_program(&p, &path).unwrap();
        assert_eq!(read_program(&path).unwrap(), p);
    }

    #[test]
    fn missing_file_reports_path() {
        let err = read_program("/nonexistent/trace.json").unwrap_err();
        let msg = err.to_string();
        assert!(matches!(err, TraceFileError::Io { .. }), "{msg}");
        assert!(msg.contains("/nonexistent/trace.json"), "{msg}");
    }

    #[test]
    fn fingerprint_is_stable_and_content_sensitive() {
        let p = sample();
        assert_eq!(program_fingerprint(&p), program_fingerprint(&sample()));
        let mut q = p.clone();
        q.name = "renamed".to_string();
        assert_ne!(program_fingerprint(&p), program_fingerprint(&q));
        let mut r = p.clone();
        if let crate::program::Segment::Block(b) = &mut r.threads[1].segments[1] {
            b.seed ^= 1;
        }
        assert_ne!(program_fingerprint(&p), program_fingerprint(&r));
    }

    #[test]
    fn errors_render_actionable_messages() {
        let errors = [
            import_program("{").unwrap_err(),
            import_program("[1,2]").unwrap_err(),
            import_program("{\"format\":\"other\",\"version\":1}").unwrap_err(),
            import_program(&format!("{{\"format\":\"{TRACE_FORMAT}\",\"version\":99}}"))
                .unwrap_err(),
            import_program(&format!("{{\"format\":\"{TRACE_FORMAT}\",\"version\":1}}"))
                .unwrap_err(),
        ];
        for e in errors {
            assert!(!e.to_string().is_empty());
        }
    }
}

//! Address and branch-outcome patterns.
//!
//! Workload blocks describe their memory and control-flow behaviour
//! parametrically; the patterns here expand to concrete address and outcome
//! streams. The patterns are chosen so that the benchmark analogs can dial in
//! the locality (reuse-distance shape), sharing (coherence traffic) and
//! branch predictability (outcome entropy) regimes the paper's workloads
//! exhibit.

use crate::rng::Rng;
use serde::{Deserialize, Serialize};

/// A contiguous region of the line-granular address space.
///
/// Regions are allocated by [`crate::ProgramBuilder::alloc_region`]; distinct
/// regions never overlap.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Region {
    /// First cache line of the region.
    pub base: u64,
    /// Extent in cache lines.
    pub lines: u64,
}

impl Region {
    /// Creates a region covering `lines` cache lines starting at `base`.
    ///
    /// # Panics
    ///
    /// Panics if `lines == 0`.
    pub fn new(base: u64, lines: u64) -> Self {
        assert!(lines > 0, "region must span at least one line");
        Region { base, lines }
    }

    /// Splits the region into `n` equal consecutive chunks, returning chunk
    /// `i`. The last chunk absorbs any remainder.
    ///
    /// # Panics
    ///
    /// Panics if `i >= n` or `n == 0` or the region has fewer than `n` lines.
    pub fn chunk(&self, i: u64, n: u64) -> Region {
        assert!(n > 0 && i < n, "chunk index out of range");
        assert!(self.lines >= n, "region too small for {n} chunks");
        let per = self.lines / n;
        let base = self.base + i * per;
        let lines = if i == n - 1 {
            self.lines - per * (n - 1)
        } else {
            per
        };
        Region { base, lines }
    }

    /// Returns a sub-region of `lines` lines starting `offset` lines in,
    /// wrapping around the region end.
    pub fn window(&self, offset: u64, lines: u64) -> Region {
        let off = offset % self.lines;
        Region {
            base: self.base + off,
            lines: lines.min(self.lines).max(1),
        }
    }
}

/// Parametric data-address pattern within a block.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum AddressPattern {
    /// Sequential scan over a region with the given stride (in lines),
    /// wrapping. Successive accesses that fall in the same line model
    /// spatial locality with `repeats_per_line > 1`.
    Stream {
        /// Region scanned.
        region: Region,
        /// Stride in lines between successive line advances.
        stride: u64,
        /// Number of accesses issued to each line before advancing.
        repeats_per_line: u32,
        /// Starting offset in lines (lets epochs resume where the previous
        /// one stopped, or stream disjoint slices).
        start: u64,
    },
    /// Uniformly random accesses over a region.
    Random {
        /// Region accessed.
        region: Region,
    },
    /// Two-level working set: with probability `p_hot` access the hot
    /// sub-region (first `hot_lines` of the region), otherwise the remainder.
    Hot {
        /// Region accessed.
        region: Region,
        /// Size of the hot subset in lines.
        hot_lines: u64,
        /// Probability of touching the hot subset.
        p_hot: f64,
    },
}

impl AddressPattern {
    /// Sequential scan of `region` with unit stride.
    pub fn stream(region: Region) -> Self {
        AddressPattern::Stream {
            region,
            stride: 1,
            repeats_per_line: 1,
            start: 0,
        }
    }

    /// Sequential scan of `region` starting at `start` lines in.
    pub fn stream_from(region: Region, start: u64) -> Self {
        AddressPattern::Stream {
            region,
            stride: 1,
            repeats_per_line: 1,
            start,
        }
    }

    /// Sequential scan touching each line `repeats` times (spatial locality).
    pub fn stream_dense(region: Region, repeats: u32) -> Self {
        AddressPattern::Stream {
            region,
            stride: 1,
            repeats_per_line: repeats.max(1),
            start: 0,
        }
    }

    /// Strided scan of `region`.
    pub fn strided(region: Region, stride: u64) -> Self {
        AddressPattern::Stream {
            region,
            stride: stride.max(1),
            repeats_per_line: 1,
            start: 0,
        }
    }

    /// Uniformly random accesses over `region`.
    pub fn random(region: Region) -> Self {
        AddressPattern::Random { region }
    }

    /// Hot/cold working-set mixture.
    pub fn hot(region: Region, hot_lines: u64, p_hot: f64) -> Self {
        AddressPattern::Hot {
            region,
            hot_lines: hot_lines.max(1),
            p_hot: p_hot.clamp(0.0, 1.0),
        }
    }

    /// Instantiates the stateful sampler for one block expansion.
    pub(crate) fn sampler(&self) -> AddrSampler {
        // Stream advances are strength-reduced: `(start + pos * stride) %
        // lines` becomes a running offset bumped by the pre-reduced stride
        // with one conditional wrap — the same value without a u64 mod on
        // every access.
        let (cur, stride_r) = match self {
            AddressPattern::Stream {
                region,
                stride,
                start,
                ..
            } => (start % region.lines, stride % region.lines),
            _ => (0, 0),
        };
        AddrSampler {
            pattern: self.clone(),
            cur,
            stride_r,
            rep: 0,
        }
    }
}

/// Stateful address generator for one block expansion.
#[derive(Debug, Clone)]
pub(crate) struct AddrSampler {
    pattern: AddressPattern,
    /// Stream patterns: current offset within the region, already reduced
    /// mod `region.lines`.
    cur: u64,
    /// Stream patterns: stride reduced mod `region.lines`.
    stride_r: u64,
    rep: u32,
}

impl AddrSampler {
    pub(crate) fn next(&mut self, rng: &mut Rng) -> u64 {
        match &self.pattern {
            AddressPattern::Stream {
                region,
                repeats_per_line,
                ..
            } => {
                let line = region.base + self.cur;
                self.rep += 1;
                if self.rep >= *repeats_per_line {
                    self.rep = 0;
                    self.cur += self.stride_r;
                    if self.cur >= region.lines {
                        self.cur -= region.lines;
                    }
                }
                line
            }
            AddressPattern::Random { region } => region.base + rng.next_below(region.lines),
            AddressPattern::Hot {
                region,
                hot_lines,
                p_hot,
            } => {
                let hot = (*hot_lines).min(region.lines);
                if rng.chance(*p_hot) || hot == region.lines {
                    region.base + rng.next_below(hot)
                } else {
                    region.base + hot + rng.next_below(region.lines - hot)
                }
            }
        }
    }
}

/// Parametric branch-outcome pattern for the branch sites of a block.
///
/// The pattern controls the *entropy* of the outcome stream, which in turn
/// controls how predictable the branches are for any history-based predictor
/// — the microarchitecture-independent quantity the RPPM branch model
/// profiles.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum BranchPattern {
    /// Loop-style branch: taken `period - 1` times, then not-taken once
    /// (the loop exit). Highly predictable for any predictor with a counter
    /// or short history.
    Loop {
        /// Loop trip count.
        period: u32,
    },
    /// Independent Bernoulli outcomes, taken with probability `p_taken`.
    /// Entropy is H(p); p = 0.5 defeats every predictor.
    Bernoulli {
        /// Probability of "taken".
        p_taken: f64,
    },
    /// Repeating fixed outcome pattern of `len` bits (LSB first). Learnable
    /// by a global-history predictor whose history covers the period.
    Periodic {
        /// Outcome bits, LSB = first outcome.
        bits: u64,
        /// Pattern length in bits (1..=64).
        len: u8,
    },
}

impl BranchPattern {
    /// Loop branch taken `period - 1` out of `period` times.
    pub fn loop_every(period: u32) -> Self {
        BranchPattern::Loop {
            period: period.max(2),
        }
    }

    /// Bernoulli outcomes with the given taken probability.
    pub fn bernoulli(p_taken: f64) -> Self {
        BranchPattern::Bernoulli {
            p_taken: p_taken.clamp(0.0, 1.0),
        }
    }

    /// Repeating `len`-bit pattern.
    ///
    /// # Panics
    ///
    /// Panics if `len` is 0 or greater than 64.
    pub fn periodic(bits: u64, len: u8) -> Self {
        assert!((1..=64).contains(&len), "pattern length must be in 1..=64");
        BranchPattern::Periodic { bits, len }
    }

    pub(crate) fn sampler(&self, phase: u32) -> BranchSampler {
        BranchSampler {
            pattern: self.clone(),
            pos: phase,
        }
    }
}

/// Stateful branch-outcome generator for one branch site.
#[derive(Debug, Clone)]
pub(crate) struct BranchSampler {
    pattern: BranchPattern,
    pos: u32,
}

impl BranchSampler {
    pub(crate) fn next(&mut self, rng: &mut Rng) -> bool {
        match &self.pattern {
            BranchPattern::Loop { period } => {
                let taken = (self.pos % period) != period - 1;
                self.pos = self.pos.wrapping_add(1);
                taken
            }
            BranchPattern::Bernoulli { p_taken } => rng.chance(*p_taken),
            BranchPattern::Periodic { bits, len } => {
                let taken = (bits >> (self.pos % *len as u32)) & 1 == 1;
                self.pos = self.pos.wrapping_add(1);
                taken
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn region_chunks_partition() {
        let r = Region::new(100, 10);
        let c0 = r.chunk(0, 3);
        let c1 = r.chunk(1, 3);
        let c2 = r.chunk(2, 3);
        assert_eq!(c0, Region::new(100, 3));
        assert_eq!(c1, Region::new(103, 3));
        assert_eq!(c2, Region::new(106, 4)); // remainder absorbed
        assert_eq!(c0.lines + c1.lines + c2.lines, r.lines);
    }

    #[test]
    #[should_panic(expected = "chunk index")]
    fn region_chunk_out_of_range_panics() {
        Region::new(0, 10).chunk(3, 3);
    }

    #[test]
    fn stream_wraps_and_stays_in_region() {
        let r = Region::new(50, 4);
        let mut s = AddressPattern::stream(r).sampler();
        let mut rng = Rng::new(0);
        let seq: Vec<u64> = (0..10).map(|_| s.next(&mut rng)).collect();
        assert_eq!(seq, vec![50, 51, 52, 53, 50, 51, 52, 53, 50, 51]);
    }

    #[test]
    fn stream_dense_repeats_lines() {
        let r = Region::new(0, 8);
        let mut s = AddressPattern::stream_dense(r, 3).sampler();
        let mut rng = Rng::new(0);
        let seq: Vec<u64> = (0..7).map(|_| s.next(&mut rng)).collect();
        assert_eq!(seq, vec![0, 0, 0, 1, 1, 1, 2]);
    }

    #[test]
    fn strided_skips_lines() {
        let r = Region::new(0, 16);
        let mut s = AddressPattern::strided(r, 4).sampler();
        let mut rng = Rng::new(0);
        let seq: Vec<u64> = (0..5).map(|_| s.next(&mut rng)).collect();
        assert_eq!(seq, vec![0, 4, 8, 12, 0]);
    }

    #[test]
    fn random_stays_in_region() {
        let r = Region::new(1000, 64);
        let mut s = AddressPattern::random(r).sampler();
        let mut rng = Rng::new(1);
        for _ in 0..1000 {
            let a = s.next(&mut rng);
            assert!((1000..1064).contains(&a));
        }
    }

    #[test]
    fn hot_pattern_is_biased() {
        let r = Region::new(0, 1000);
        let mut s = AddressPattern::hot(r, 10, 0.9).sampler();
        let mut rng = Rng::new(2);
        let hot_hits = (0..10_000).filter(|_| s.next(&mut rng) < 10).count();
        let frac = hot_hits as f64 / 10_000.0;
        assert!((frac - 0.9).abs() < 0.02, "hot fraction {frac}");
    }

    #[test]
    fn loop_branch_is_mostly_taken() {
        let mut s = BranchPattern::loop_every(4).sampler(0);
        let mut rng = Rng::new(0);
        let seq: Vec<bool> = (0..8).map(|_| s.next(&mut rng)).collect();
        assert_eq!(seq, vec![true, true, true, false, true, true, true, false]);
    }

    #[test]
    fn bernoulli_rate_matches() {
        let mut s = BranchPattern::bernoulli(0.7).sampler(0);
        let mut rng = Rng::new(3);
        let taken = (0..100_000).filter(|_| s.next(&mut rng)).count();
        let frac = taken as f64 / 100_000.0;
        assert!((frac - 0.7).abs() < 0.01, "taken rate {frac}");
    }

    #[test]
    fn periodic_repeats() {
        // pattern 0b0110 (LSB first): F T T F F T T F ...
        let mut s = BranchPattern::periodic(0b0110, 4).sampler(0);
        let mut rng = Rng::new(0);
        let seq: Vec<bool> = (0..8).map(|_| s.next(&mut rng)).collect();
        assert_eq!(
            seq,
            vec![false, true, true, false, false, true, true, false]
        );
    }

    #[test]
    fn periodic_phase_offsets_start() {
        let mut s = BranchPattern::periodic(0b01, 2).sampler(1);
        let mut rng = Rng::new(0);
        assert!(!s.next(&mut rng)); // position 1 of "10" = 0
        assert!(s.next(&mut rng));
    }

    #[test]
    fn samplers_deterministic() {
        let r = Region::new(0, 100);
        let mk = || {
            let mut s = AddressPattern::hot(r, 5, 0.5).sampler();
            let mut rng = Rng::new(77);
            (0..50).map(|_| s.next(&mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(mk(), mk());
    }
}

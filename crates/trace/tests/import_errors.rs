//! Malformed trace files must yield typed, actionable errors — never a
//! panic. Each test corrupts one aspect of a known-good file (JSON
//! interchange or `RPT1` binary) and asserts the importer reports the
//! matching [`TraceFileError`] variant.

use rppm_trace::{
    export_program, export_program_binary, import_program, import_program_binary,
    import_program_bytes, BlockSpec, ProgramBuilder, TraceFileError, BINARY_TRACE_VERSION,
    TRACE_FORMAT, TRACE_VERSION,
};

fn good_file() -> String {
    let mut b = ProgramBuilder::new("victim", 2);
    let bar = b.alloc_barrier();
    b.spawn_workers();
    for t in 0..2u32 {
        b.thread(t)
            .block(BlockSpec::new(256, 5 + t as u64).loads(0.2).branches(0.1))
            .barrier(bar);
    }
    b.join_workers();
    export_program(&b.build()).expect("good program serializes")
}

#[test]
fn wrong_schema_version_is_rejected() {
    // A program without version-2 events serializes as version 1; claim a
    // version newer than anything this build reads.
    let future = TRACE_VERSION + 1;
    let text = good_file().replace("\"version\":1", &format!("\"version\":{future}"));
    match import_program(&text) {
        Err(TraceFileError::UnsupportedVersion { found, supported }) => {
            assert_eq!(found, future as u64);
            assert_eq!(supported, TRACE_VERSION);
        }
        other => panic!("expected UnsupportedVersion, got {other:?}"),
    }
}

#[test]
fn non_integer_version_is_rejected() {
    let text = good_file().replace("\"version\":1", "\"version\":\"one\"");
    match import_program(&text) {
        Err(e @ TraceFileError::NotATraceFile { .. }) => {
            // Mistyped must read differently from absent: the field *is*
            // present, just the wrong type.
            let msg = e.to_string();
            assert!(msg.contains("must be a non-negative integer"), "{msg}");
            assert!(msg.contains("a string"), "{msg}");
        }
        other => panic!("expected NotATraceFile, got {other:?}"),
    }
}

#[test]
fn truncated_file_is_a_json_error() {
    let text = good_file();
    for cut in [1, text.len() / 3, text.len() - 1] {
        let err = import_program(&text[..cut]).unwrap_err();
        assert!(
            matches!(err, TraceFileError::Json { .. }),
            "cut at {cut}: expected Json error, got {err:?}"
        );
    }
}

#[test]
fn unknown_sync_event_kind_is_a_schema_error() {
    let text = good_file().replace("\"Barrier\"", "\"Rendezvous\"");
    match import_program(&text) {
        Err(TraceFileError::Schema { detail }) => {
            assert!(
                detail.contains("Rendezvous"),
                "diagnostic should name the unknown kind: {detail}"
            );
        }
        other => panic!("expected Schema error, got {other:?}"),
    }
}

#[test]
fn missing_block_field_is_a_schema_error() {
    // Drop every block's `seed` field (name plus value plus the comma).
    let text = good_file()
        .replace("\"seed\":5,", "")
        .replace("\"seed\":6,", "");
    match import_program(&text) {
        Err(TraceFileError::Schema { detail }) => {
            assert!(
                detail.contains("seed"),
                "diagnostic should name the field: {detail}"
            );
        }
        other => panic!("expected Schema error, got {other:?}"),
    }
}

#[test]
fn wrong_format_tag_is_rejected() {
    let text = good_file().replace(TRACE_FORMAT, "someone-elses-trace");
    match import_program(&text) {
        Err(TraceFileError::NotATraceFile { detail }) => {
            assert!(detail.contains("someone-elses-trace"), "{detail}");
        }
        other => panic!("expected NotATraceFile, got {other:?}"),
    }
}

#[test]
fn non_object_top_level_is_rejected() {
    for text in ["[]", "42", "\"rppm-trace\"", "null"] {
        assert!(
            matches!(
                import_program(text),
                Err(TraceFileError::NotATraceFile { .. })
            ),
            "{text}"
        );
    }
}

#[test]
fn structurally_invalid_program_is_rejected() {
    // A worker thread with segments but no Create event: parses fine,
    // fails validation.
    let text = format!(
        "{{\"format\":\"{TRACE_FORMAT}\",\"version\":{TRACE_VERSION},\"program\":\
         {{\"name\":\"orphan\",\"threads\":[{{\"segments\":[]}},\
         {{\"segments\":[{{\"Sync\":{{\"Consume\":{{\"queue\":0}}}}}}]}}]}}}}"
    );
    match import_program(&text) {
        Err(TraceFileError::InvalidProgram(e)) => {
            assert!(e.to_string().contains("never created"), "{e}");
        }
        other => panic!("expected InvalidProgram, got {other:?}"),
    }
}

// ---------------------------------------------------------------------------
// RPT1 binary container

fn good_binary() -> Vec<u8> {
    let mut b = ProgramBuilder::new("bin-victim", 2);
    let bar = b.alloc_barrier();
    let r = b.alloc_region(1024);
    b.spawn_workers();
    for t in 0..2u32 {
        b.thread(t)
            .block(
                BlockSpec::new(256, 5 + t as u64)
                    .loads(0.2)
                    .branches(0.1)
                    .addr(rppm_trace::AddressPattern::stream(r), 1.0),
            )
            .barrier(bar);
    }
    b.join_workers();
    export_program_binary(&b.build()).expect("good program serializes")
}

#[test]
fn bad_magic_is_rejected_with_found_bytes() {
    let mut bytes = good_binary();
    bytes[..4].copy_from_slice(b"NOPE");
    match import_program_binary(&bytes) {
        Err(TraceFileError::BadMagic { found }) => {
            assert_eq!(&found, b"NOPE");
        }
        other => panic!("expected BadMagic, got {other:?}"),
    }
    // The auto-detecting entry point treats non-RPT1 bytes as JSON, which
    // these are not either — still a typed error, never a panic.
    assert!(import_program_bytes(&bytes).is_err());
}

#[test]
fn binary_unsupported_version_is_rejected() {
    let mut bytes = good_binary();
    // The version varint sits right after the 4 magic bytes; a program
    // without version-2 events is written as version 1 (one byte, 0x01).
    // Claim version 9 instead.
    assert_eq!(bytes[4], 1);
    bytes[4] = 9;
    match import_program_binary(&bytes) {
        Err(TraceFileError::UnsupportedVersion { found, supported }) => {
            assert_eq!(found, 9);
            assert_eq!(supported, BINARY_TRACE_VERSION);
        }
        other => panic!("expected UnsupportedVersion, got {other:?}"),
    }
}

#[test]
fn truncated_binary_is_detected_at_every_cut() {
    let bytes = good_binary();
    // Cut the stream at every prefix length: each must fail with a typed
    // error (Truncated for almost all cuts; never Ok, never a panic).
    for cut in 0..bytes.len() {
        let err = import_program_binary(&bytes[..cut]).unwrap_err();
        assert!(
            matches!(
                err,
                TraceFileError::Truncated { .. }
                    | TraceFileError::BadMagic { .. }
                    | TraceFileError::Corrupt { .. }
            ),
            "cut at {cut}: got {err:?}"
        );
    }
}

#[test]
fn truncated_section_is_reported() {
    let bytes = good_binary();
    // Drop the final end section plus a few payload bytes: the reader
    // must report what it was reading when the stream ran out.
    let err = import_program_binary(&bytes[..bytes.len() - 6]).unwrap_err();
    match err {
        TraceFileError::Truncated { context } => {
            assert!(!context.is_empty(), "context must say what was cut off");
        }
        other => panic!("expected Truncated, got {other:?}"),
    }
}

#[test]
fn header_name_overrunning_its_section_is_truncated_not_a_panic() {
    // A crafted header whose declared name length fits the payload total
    // but overruns the bytes remaining after the length varint itself.
    let mut bytes = Vec::from(*b"RPT1");
    bytes.push(BINARY_TRACE_VERSION as u8);
    bytes.push(1); // header tag
    bytes.push(3); // section length: 3 bytes
    bytes.extend_from_slice(&[0x03, b'a', b'b']); // name_len 3, only 2 bytes left
    match import_program_binary(&bytes) {
        Err(TraceFileError::Truncated { context }) => {
            assert!(context.contains("name"), "{context}");
        }
        other => panic!("expected Truncated, got {other:?}"),
    }
}

#[test]
fn implausible_thread_count_is_rejected_before_allocating() {
    // num_threads = u32::MAX must fail fast, not attempt a giant
    // per-thread state allocation.
    let mut bytes = Vec::from(*b"RPT1");
    bytes.push(BINARY_TRACE_VERSION as u8);
    bytes.push(1); // header tag
    let name = [0x01, b'x']; // name_len 1, "x"
    let threads = [0xFF, 0xFF, 0xFF, 0xFF, 0x0F]; // varint u32::MAX
    bytes.push((name.len() + threads.len()) as u8); // section length
    bytes.extend_from_slice(&name);
    bytes.extend_from_slice(&threads);
    match import_program_binary(&bytes) {
        Err(TraceFileError::Corrupt { detail }) => {
            assert!(detail.contains("threads"), "{detail}");
        }
        other => panic!("expected Corrupt, got {other:?}"),
    }
}

#[test]
fn varint_overrun_is_detected() {
    // A version varint of ten 0xFF continuation bytes overruns 64 bits.
    let mut bytes = Vec::from(*b"RPT1");
    bytes.extend_from_slice(&[0xFF; 10]);
    match import_program_binary(&bytes) {
        Err(TraceFileError::VarintOverrun { context }) => {
            assert!(!context.is_empty());
        }
        other => panic!("expected VarintOverrun, got {other:?}"),
    }
}

#[test]
fn trailing_garbage_after_end_section_is_rejected() {
    let mut bytes = good_binary();
    bytes.extend_from_slice(b"junk");
    match import_program_binary(&bytes) {
        Err(TraceFileError::Corrupt { detail }) => {
            assert!(detail.contains("trailing"), "{detail}");
        }
        other => panic!("expected Corrupt, got {other:?}"),
    }
}

#[test]
fn oversized_section_length_is_rejected_without_allocation() {
    // A corrupt length prefix claiming an enormous section must fail fast
    // instead of attempting the allocation.
    let mut bytes = Vec::from(*b"RPT1");
    bytes.push(BINARY_TRACE_VERSION as u8);
    bytes.push(1); // header tag
                   // varint for u64::MAX / 2: way beyond the section cap.
    bytes.extend_from_slice(&[0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F]);
    match import_program_binary(&bytes) {
        Err(TraceFileError::Corrupt { detail }) => {
            assert!(detail.contains("section"), "{detail}");
        }
        other => panic!("expected Corrupt, got {other:?}"),
    }
}

#[test]
fn structurally_invalid_binary_program_is_rejected() {
    // Encode an orphan-worker program directly through the writer: it
    // parses fine but fails Program::validate on import.
    let mut p = rppm_trace::Program::new("orphan", 2);
    p.threads[1]
        .segments
        .push(rppm_trace::Segment::Block(BlockSpec::new(8, 1)));
    let bytes = export_program_binary(&p).expect("writer does not validate");
    match import_program_binary(&bytes) {
        Err(TraceFileError::InvalidProgram(e)) => {
            assert!(e.to_string().contains("never created"), "{e}");
        }
        other => panic!("expected InvalidProgram, got {other:?}"),
    }
}

#[test]
fn every_binary_error_message_is_actionable() {
    let mut bad_magic = good_binary();
    bad_magic[0] = b'X';
    let mut versioned = good_binary();
    versioned[4] = 42;
    let truncated = &good_binary()[..10];
    let cases = [
        import_program_binary(&bad_magic).unwrap_err().to_string(),
        import_program_binary(&versioned).unwrap_err().to_string(),
        import_program_binary(truncated).unwrap_err().to_string(),
    ];
    assert!(cases[0].contains("RPT1"), "{}", cases[0]);
    assert!(cases[1].contains("42"), "{}", cases[1]);
    for msg in cases {
        assert!(msg.len() > 20, "too terse: {msg}");
    }
}

#[test]
fn every_error_message_is_actionable() {
    // The user-facing contract: messages say what to fix.
    let cases = [
        import_program("").unwrap_err().to_string(),
        import_program("{\"format\":\"x\",\"version\":1}")
            .unwrap_err()
            .to_string(),
        import_program(&format!("{{\"format\":\"{TRACE_FORMAT}\",\"version\":7}}"))
            .unwrap_err()
            .to_string(),
    ];
    assert!(cases[1].contains(TRACE_FORMAT), "{}", cases[1]);
    assert!(
        cases[2].contains("version 7") || cases[2].contains("version"),
        "{}",
        cases[2]
    );
    for msg in cases {
        assert!(msg.len() > 20, "too terse: {msg}");
    }
}

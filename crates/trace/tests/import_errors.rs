//! Malformed trace files must yield typed, actionable errors — never a
//! panic. Each test corrupts one aspect of a known-good file and asserts
//! the importer reports the matching [`TraceFileError`] variant.

use rppm_trace::{
    export_program, import_program, BlockSpec, ProgramBuilder, TraceFileError, TRACE_FORMAT,
    TRACE_VERSION,
};

fn good_file() -> String {
    let mut b = ProgramBuilder::new("victim", 2);
    let bar = b.alloc_barrier();
    b.spawn_workers();
    for t in 0..2u32 {
        b.thread(t)
            .block(BlockSpec::new(256, 5 + t as u64).loads(0.2).branches(0.1))
            .barrier(bar);
    }
    b.join_workers();
    export_program(&b.build()).expect("good program serializes")
}

#[test]
fn wrong_schema_version_is_rejected() {
    let text = good_file().replace(&format!("\"version\":{TRACE_VERSION}"), "\"version\":2");
    match import_program(&text) {
        Err(TraceFileError::UnsupportedVersion { found, supported }) => {
            assert_eq!(found, 2);
            assert_eq!(supported, TRACE_VERSION);
        }
        other => panic!("expected UnsupportedVersion, got {other:?}"),
    }
}

#[test]
fn non_integer_version_is_rejected() {
    let text = good_file().replace(
        &format!("\"version\":{TRACE_VERSION}"),
        "\"version\":\"one\"",
    );
    match import_program(&text) {
        Err(e @ TraceFileError::NotATraceFile { .. }) => {
            // Mistyped must read differently from absent: the field *is*
            // present, just the wrong type.
            let msg = e.to_string();
            assert!(msg.contains("must be a non-negative integer"), "{msg}");
            assert!(msg.contains("a string"), "{msg}");
        }
        other => panic!("expected NotATraceFile, got {other:?}"),
    }
}

#[test]
fn truncated_file_is_a_json_error() {
    let text = good_file();
    for cut in [1, text.len() / 3, text.len() - 1] {
        let err = import_program(&text[..cut]).unwrap_err();
        assert!(
            matches!(err, TraceFileError::Json { .. }),
            "cut at {cut}: expected Json error, got {err:?}"
        );
    }
}

#[test]
fn unknown_sync_event_kind_is_a_schema_error() {
    let text = good_file().replace("\"Barrier\"", "\"Rendezvous\"");
    match import_program(&text) {
        Err(TraceFileError::Schema { detail }) => {
            assert!(
                detail.contains("Rendezvous"),
                "diagnostic should name the unknown kind: {detail}"
            );
        }
        other => panic!("expected Schema error, got {other:?}"),
    }
}

#[test]
fn missing_block_field_is_a_schema_error() {
    // Drop every block's `seed` field (name plus value plus the comma).
    let text = good_file()
        .replace("\"seed\":5,", "")
        .replace("\"seed\":6,", "");
    match import_program(&text) {
        Err(TraceFileError::Schema { detail }) => {
            assert!(
                detail.contains("seed"),
                "diagnostic should name the field: {detail}"
            );
        }
        other => panic!("expected Schema error, got {other:?}"),
    }
}

#[test]
fn wrong_format_tag_is_rejected() {
    let text = good_file().replace(TRACE_FORMAT, "someone-elses-trace");
    match import_program(&text) {
        Err(TraceFileError::NotATraceFile { detail }) => {
            assert!(detail.contains("someone-elses-trace"), "{detail}");
        }
        other => panic!("expected NotATraceFile, got {other:?}"),
    }
}

#[test]
fn non_object_top_level_is_rejected() {
    for text in ["[]", "42", "\"rppm-trace\"", "null"] {
        assert!(
            matches!(
                import_program(text),
                Err(TraceFileError::NotATraceFile { .. })
            ),
            "{text}"
        );
    }
}

#[test]
fn structurally_invalid_program_is_rejected() {
    // A worker thread with segments but no Create event: parses fine,
    // fails validation.
    let text = format!(
        "{{\"format\":\"{TRACE_FORMAT}\",\"version\":{TRACE_VERSION},\"program\":\
         {{\"name\":\"orphan\",\"threads\":[{{\"segments\":[]}},\
         {{\"segments\":[{{\"Sync\":{{\"Consume\":{{\"queue\":0}}}}}}]}}]}}}}"
    );
    match import_program(&text) {
        Err(TraceFileError::InvalidProgram(e)) => {
            assert!(e.to_string().contains("never created"), "{e}");
        }
        other => panic!("expected InvalidProgram, got {other:?}"),
    }
}

#[test]
fn every_error_message_is_actionable() {
    // The user-facing contract: messages say what to fix.
    let cases = [
        import_program("").unwrap_err().to_string(),
        import_program("{\"format\":\"x\",\"version\":1}")
            .unwrap_err()
            .to_string(),
        import_program(&format!("{{\"format\":\"{TRACE_FORMAT}\",\"version\":7}}"))
            .unwrap_err()
            .to_string(),
    ];
    assert!(cases[1].contains(TRACE_FORMAT), "{}", cases[1]);
    assert!(
        cases[2].contains("version 7") || cases[2].contains("version"),
        "{}",
        cases[2]
    );
    for msg in cases {
        assert!(msg.len() > 20, "too terse: {msg}");
    }
}

//! The out-of-core op-stream surface must be as hostile-input-proof as the
//! base container (mirroring `import_errors.rs`): every prefix truncation
//! of a version-3 file yields a typed error, op-section corruption is
//! caught at open, plain containers report `NoOpStream`, and — the pinning
//! property — a recorded stream replays bit-identically to re-expansion
//! for arbitrary generated programs.

use proptest::prelude::*;
use rppm_trace::{
    container_info, export_program_ops, AddressPattern, BlockItem, BlockSpec, ExecSource, MicroOp,
    OpReplay, Program, ProgramBuilder, StreamOptions, SyncOp, TraceFileError,
};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

fn tmp_path(tag: &str) -> PathBuf {
    static SEQ: AtomicUsize = AtomicUsize::new(0);
    let seq = SEQ.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "rppm-opstream-test-{}-{tag}-{seq}.rpt",
        std::process::id()
    ))
}

/// Removes the temp file even when an assertion unwinds mid-test.
struct TempFile(PathBuf);

impl Drop for TempFile {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

/// A small program exercising every synchronization kind the builder
/// offers, so the recorded sync sections cover the whole `SyncOp` surface.
fn rich_program() -> Program {
    let mut b = ProgramBuilder::new("rich", 3);
    let bar = b.alloc_barrier();
    let mx = b.alloc_mutex();
    let q = b.alloc_queue();
    let rw = b.alloc_rwlock();
    let sem = b.alloc_sem();
    let reg = b.alloc_region(256);
    b.spawn_workers();
    for t in 0..3u32 {
        b.thread(t)
            .block(
                BlockSpec::new(96 + t, 11 + t as u64)
                    .loads(0.25)
                    .stores(0.05)
                    .branches(0.1)
                    .addr(AddressPattern::stream(reg), 1.0),
            )
            .barrier(bar)
            .lock(mx)
            .unlock(mx)
            .rw_lock(rw, t == 0)
            .rw_unlock(rw)
            .block(BlockSpec::new(64, 90 + t as u64));
    }
    b.thread(0u32).produce(q, 2).sem_post(sem, 2);
    b.thread(1u32).consume(q).sem_wait(sem);
    b.thread(2u32).consume(q).sem_wait(sem);
    b.join_workers();
    b.build()
}

/// Collects a cursor's full (op, sync) stream through the public
/// `peek_block`/`consume` API, exactly as the profiler and simulator
/// drive it.
fn drain<S: ExecSource>(source: &S, thread: usize) -> (Vec<MicroOp>, Vec<SyncOp>) {
    let mut cur = source.cursor(thread);
    let mut ops = Vec::new();
    let mut syncs = Vec::new();
    while let Some(item) = cur.peek_block() {
        match item {
            BlockItem::Ops(slice) => {
                assert!(!slice.is_empty(), "Ops slices are never empty");
                ops.extend_from_slice(slice);
                let n = slice.len();
                cur.consume_ops(n);
            }
            BlockItem::Sync(op) => {
                syncs.push(op);
                cur.consume_sync();
            }
        }
    }
    (ops, syncs)
}

#[test]
fn truncated_op_stream_is_detected_at_every_cut() {
    let bytes = export_program_ops(&rich_program()).expect("record");
    let path = tmp_path("truncate");
    let _guard = TempFile(path.clone());
    // Every proper prefix must fail with a typed error — never Ok, never a
    // panic — through both the replay opener and the trace-info scan.
    for cut in 0..bytes.len() {
        std::fs::write(&path, &bytes[..cut]).expect("write prefix");
        let err = match OpReplay::open(&path) {
            Err(e) => e,
            Ok(_) => panic!("cut at {cut}: opened a truncated stream"),
        };
        assert!(
            matches!(
                err,
                TraceFileError::Truncated { .. }
                    | TraceFileError::BadMagic { .. }
                    | TraceFileError::Corrupt { .. }
            ),
            "cut at {cut}: got {err:?}"
        );
        let info_err = match container_info(&path) {
            Err(e) => e,
            Ok(_) => panic!("cut at {cut}: scanned a truncated stream"),
        };
        assert!(
            matches!(
                info_err,
                TraceFileError::Truncated { .. }
                    | TraceFileError::BadMagic { .. }
                    | TraceFileError::Corrupt { .. }
            ),
            "cut at {cut}: got {info_err:?}"
        );
    }
    // The full file opens.
    std::fs::write(&path, &bytes).expect("write full");
    OpReplay::open(&path).expect("full stream opens");
}

#[test]
fn flipped_op_payload_bytes_are_caught_at_open() {
    let program = rich_program();
    let clean = export_program_ops(&program).expect("record");
    let path = tmp_path("corrupt");
    let _guard = TempFile(path.clone());
    // Flip one byte at several points across the file. Open must either
    // reject with a typed error or — when the flip lands in generator
    // parameters so the decoded program is merely *different* — fail the
    // recorded-vs-decoded cross-check. It must never open successfully,
    // because any accepted byte matters somewhere.
    let mut rejected = 0usize;
    for pos in (8..clean.len()).step_by(clean.len() / 23 + 1) {
        let mut bytes = clean.clone();
        bytes[pos] ^= 0x55;
        std::fs::write(&path, &bytes).expect("write corrupt");
        if OpReplay::open(&path).is_err() {
            rejected += 1;
        }
    }
    assert!(rejected > 0, "no corruption was ever rejected");
}

#[test]
fn plain_container_reports_no_op_stream() {
    let program = rich_program();
    let path = tmp_path("plain");
    let _guard = TempFile(path.clone());
    rppm_trace::write_program_binary(&program, &path).expect("write v1");
    match OpReplay::open(&path) {
        Err(TraceFileError::NoOpStream { .. }) => {}
        other => panic!("expected NoOpStream, got {other:?}"),
    }
}

#[test]
fn rich_program_replays_bit_identically() {
    let program = rich_program();
    let path = tmp_path("rich");
    let _guard = TempFile(path.clone());
    rppm_trace::write_program_ops(&program, &path).expect("record");
    let replay = OpReplay::open(&path).expect("open");
    assert_eq!(replay.program(), &program, "decoded program drifted");
    for t in 0..program.num_threads() {
        let (ops_a, syncs_a) = drain(&program, t);
        let (ops_b, syncs_b) = drain(&replay, t);
        assert_eq!(ops_a, ops_b, "thread {t}: op streams diverge");
        assert_eq!(syncs_a, syncs_b, "thread {t}: sync streams diverge");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Record → replay is bit-identical to re-expansion for arbitrary
    /// generated programs, including under an adversarially tiny chunk
    /// and pool budget with the mmap path disabled.
    #[test]
    fn record_replay_roundtrip_is_bit_identical(
        seed in 1u64..1_000_000,
        ops in 8u32..600,
        loads in 0u32..40,
        branches in 0u32..20,
        chunk_ops in 1usize..9,
        use_barrier in any::<bool>(),
        use_queue in any::<bool>(),
    ) {
        let mut b = ProgramBuilder::new("prop", 2);
        let bar = b.alloc_barrier();
        let q = b.alloc_queue();
        let reg = b.alloc_region(512);
        b.spawn_workers();
        for t in 0..2u32 {
            b.thread(t).block(
                BlockSpec::new(ops + t, seed + t as u64)
                    .loads(loads as f64 / 100.0)
                    .branches(branches as f64 / 100.0)
                    .addr(AddressPattern::stream(reg), 1.0),
            );
            if use_barrier {
                b.thread(t).barrier(bar);
                b.thread(t).block(BlockSpec::new(ops / 2 + 1, seed ^ 0xABCD));
            }
        }
        if use_queue {
            b.thread(0u32).produce(q, 1);
            b.thread(1u32).consume(q);
        }
        b.join_workers();
        let program = b.build();

        let path = tmp_path("prop");
        let _guard = TempFile(path.clone());
        rppm_trace::write_program_ops(&program, &path)
            .expect("record");
        let replay = OpReplay::open_with(&path, StreamOptions {
            chunk_ops,
            pool_bytes: 128,
            mmap: false,
            ..StreamOptions::default()
        }).expect("open");

        prop_assert_eq!(replay.total_ops(), program.total_ops());
        for t in 0..program.num_threads() {
            let (ops_a, syncs_a) = drain(&program, t);
            let (ops_b, syncs_b) = drain(&replay, t);
            prop_assert_eq!(ops_a, ops_b, "thread {} op streams diverge", t);
            prop_assert_eq!(syncs_a, syncs_b, "thread {} sync streams diverge", t);
        }
    }
}

//! Malformed `.machine` files must yield typed, actionable errors — never
//! a panic and never a silently-misread configuration. Each test corrupts
//! one aspect of a known-good machine description and asserts the parser
//! reports the matching [`MachineFileError`] variant, mirroring the trace
//! importer's `import_errors` suite.

use rppm_trace::{
    format_machine, parse_machine, read_machine, DesignPoint, MachineFileError, MACHINE_FORMAT,
    MACHINE_VERSION,
};

fn good_file() -> String {
    format_machine(&DesignPoint::Base.config())
}

#[test]
fn missing_header_is_not_a_machine_file() {
    let text = good_file();
    let headerless = text
        .strip_prefix(&format!("{MACHINE_FORMAT} v{MACHINE_VERSION}\n"))
        .expect("known header");
    match parse_machine(headerless) {
        Err(MachineFileError::NotAMachineFile { detail }) => {
            assert!(detail.contains("[machine]"), "{detail}");
        }
        other => panic!("expected NotAMachineFile, got {other:?}"),
    }
    // Empty input reads differently: nothing was found at all.
    match parse_machine("") {
        Err(MachineFileError::NotAMachineFile { detail }) => {
            assert!(detail.contains("empty"), "{detail}");
        }
        other => panic!("expected NotAMachineFile, got {other:?}"),
    }
}

#[test]
fn future_version_is_rejected() {
    let future = MACHINE_VERSION + 1;
    let text = good_file().replacen(
        &format!("{MACHINE_FORMAT} v{MACHINE_VERSION}"),
        &format!("{MACHINE_FORMAT} v{future}"),
        1,
    );
    match parse_machine(&text) {
        Err(MachineFileError::UnsupportedVersion { found, supported }) => {
            assert_eq!(found, future as u64);
            assert_eq!(supported, MACHINE_VERSION);
        }
        other => panic!("expected UnsupportedVersion, got {other:?}"),
    }
}

#[test]
fn malformed_version_is_not_a_machine_file() {
    let text = good_file().replacen(
        &format!("{MACHINE_FORMAT} v{MACHINE_VERSION}"),
        &format!("{MACHINE_FORMAT} vtwo"),
        1,
    );
    match parse_machine(&text) {
        Err(MachineFileError::NotAMachineFile { detail }) => {
            assert!(detail.contains("version"), "{detail}");
        }
        other => panic!("expected NotAMachineFile, got {other:?}"),
    }
}

#[test]
fn non_pair_line_is_a_syntax_error_with_line_number() {
    let text = good_file().replacen("cores = 4", "cores 4", 1);
    match parse_machine(&text) {
        Err(MachineFileError::Syntax { line, detail }) => {
            assert!(line > 1, "line number should point into the body");
            assert!(detail.contains("cores 4"), "{detail}");
        }
        other => panic!("expected Syntax, got {other:?}"),
    }
}

#[test]
fn key_before_any_section_is_a_syntax_error() {
    let text = format!("{MACHINE_FORMAT} v{MACHINE_VERSION}\nname = rogue\n");
    match parse_machine(&text) {
        Err(MachineFileError::Syntax { line, detail }) => {
            assert_eq!(line, 2);
            assert!(detail.contains("before any"), "{detail}");
        }
        other => panic!("expected Syntax, got {other:?}"),
    }
}

#[test]
fn unknown_section_is_rejected_and_named() {
    let text = good_file().replacen("[bpred]", "[bprediction]", 1);
    match parse_machine(&text) {
        Err(MachineFileError::UnknownSection { line, section }) => {
            assert!(line > 1);
            assert_eq!(section, "bprediction");
        }
        other => panic!("expected UnknownSection, got {other:?}"),
    }
}

#[test]
fn unknown_key_is_rejected_and_named() {
    let text = good_file().replacen("mshrs = 10", "mhsrs = 10", 1);
    match parse_machine(&text) {
        Err(MachineFileError::UnknownKey { section, key, .. }) => {
            assert_eq!(section, "machine");
            assert_eq!(key, "mhsrs");
        }
        other => panic!("expected UnknownKey, got {other:?}"),
    }
}

#[test]
fn duplicate_key_is_rejected_like_an_unknown_one() {
    // A duplicate would otherwise let the second value silently win; the
    // parser treats it as the same class of error as a typo.
    let text = good_file().replacen("cores = 4", "cores = 4\ncores = 8", 1);
    match parse_machine(&text) {
        Err(MachineFileError::UnknownKey { section, key, line }) => {
            assert_eq!(section, "machine");
            assert_eq!(key, "cores");
            assert!(line > 1);
        }
        other => panic!("expected UnknownKey, got {other:?}"),
    }
}

#[test]
fn unparseable_value_is_a_bad_value_with_context() {
    let text = good_file().replacen("cores = 4", "cores = four", 1);
    match parse_machine(&text) {
        Err(MachineFileError::BadValue {
            section,
            key,
            detail,
            ..
        }) => {
            assert_eq!(section, "machine");
            assert_eq!(key, "cores");
            assert!(detail.contains("four"), "{detail}");
        }
        other => panic!("expected BadValue, got {other:?}"),
    }
}

#[test]
fn non_finite_float_is_a_bad_value() {
    let text = good_file().replacen("mem_latency_ns = 80", "mem_latency_ns = inf", 1);
    match parse_machine(&text) {
        Err(MachineFileError::BadValue { key, detail, .. }) => {
            assert_eq!(key, "mem_latency_ns");
            assert!(detail.contains("finite"), "{detail}");
        }
        other => panic!("expected BadValue, got {other:?}"),
    }
}

#[test]
fn missing_section_is_reported_by_name() {
    let text = good_file();
    let start = text.find("[l2]").expect("has [l2]");
    let end = text.find("[l3]").expect("has [l3]");
    let text = format!("{}{}", &text[..start], &text[end..]);
    match parse_machine(&text) {
        Err(MachineFileError::MissingSection { section }) => {
            assert_eq!(section, "l2");
        }
        other => panic!("expected MissingSection, got {other:?}"),
    }
}

#[test]
fn missing_key_is_reported_with_its_section() {
    let text = good_file().replacen("history_bits = 12\n", "", 1);
    match parse_machine(&text) {
        Err(MachineFileError::MissingKey { section, key }) => {
            assert_eq!(section, "bpred");
            assert_eq!(key, "history_bits");
        }
        other => panic!("expected MissingKey, got {other:?}"),
    }
}

#[test]
fn structurally_invalid_machine_is_rejected() {
    // Zero ALU ports parses fine but fails builder validation; the
    // diagnostic names the offending functional-unit class.
    let text = good_file().replacen("int_alu = 4", "int_alu = 0", 1);
    match parse_machine(&text) {
        Err(MachineFileError::Invalid { detail }) => {
            assert!(detail.contains("int_alu"), "{detail}");
        }
        other => panic!("expected Invalid, got {other:?}"),
    }
}

#[test]
fn io_error_carries_the_path() {
    let err = read_machine("/no/such/dir/x.machine").unwrap_err();
    match &err {
        MachineFileError::Io { path, .. } => {
            assert_eq!(path.to_str(), Some("/no/such/dir/x.machine"));
        }
        other => panic!("expected Io, got {other:?}"),
    }
    assert!(err.to_string().contains("x.machine"));
}

#[test]
fn every_error_message_is_actionable() {
    // The user-facing contract: one line that says what to fix, with the
    // offending line number where one exists.
    let cases = [
        parse_machine("").unwrap_err().to_string(),
        parse_machine(&format!("{MACHINE_FORMAT} v99\n"))
            .unwrap_err()
            .to_string(),
        parse_machine(&good_file().replacen("[fu]", "[eu]", 1))
            .unwrap_err()
            .to_string(),
        parse_machine(&good_file().replacen("assoc = 4", "assoc = -1", 1))
            .unwrap_err()
            .to_string(),
    ];
    assert!(cases[1].contains("99"), "{}", cases[1]);
    assert!(cases[2].contains("[eu]"), "{}", cases[2]);
    for msg in cases {
        assert!(msg.len() > 20, "too terse: {msg}");
        assert!(!msg.contains('\n'), "must be one line: {msg}");
    }
}

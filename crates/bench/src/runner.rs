//! The profile-once experiment engine.
//!
//! RPPM's headline workflow is "profile once, predict many": one
//! microarchitecture-independent profile per workload, amortized over every
//! design point it is evaluated on. [`ExperimentPlan`] is that workflow as
//! an API — a set of (workload, params) jobs crossed with machine
//! configurations, where profiling happens exactly once per workload (the
//! shared [`ProfileCache`]) and the per-cell work (golden simulation +
//! model predictions) fans out over a scoped thread pool.
//!
//! Results are placed by (workload, config) index, so output is
//! byte-identical no matter how many worker threads run the plan.

use rppm_core::{predict, predict_crit, predict_main, Prediction};
use rppm_profiler::{profile, ApplicationProfile};
use rppm_sim::{simulate, SimResult};
use rppm_trace::{MachineConfig, Program};
use rppm_workloads::{Benchmark, Params};
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Cache key: a workload is identified by its name and generation
/// parameters (same key ⇒ bit-identical program and profile).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct JobKey {
    name: &'static str,
    scale_bits: u64,
    seed: u64,
}

impl JobKey {
    fn of(bench: &Benchmark, params: &Params) -> Self {
        JobKey {
            name: bench.name,
            scale_bits: params.scale.to_bits(),
            seed: params.seed,
        }
    }
}

/// A workload built and profiled once, shared (via [`Arc`]) by every
/// configuration cell that predicts or simulates it.
#[derive(Debug, Clone)]
pub struct ProfiledWorkload {
    /// The generated program (needed for golden-reference simulation).
    pub program: Arc<Program>,
    /// The one-time microarchitecture-independent profile.
    pub profile: Arc<ApplicationProfile>,
}

/// Shared profile store: each (workload, params) pair is built and profiled
/// exactly once per cache, no matter how many experiments, configurations,
/// or worker threads ask for it.
#[derive(Debug, Default)]
pub struct ProfileCache {
    map: Mutex<HashMap<JobKey, Arc<OnceLock<ProfiledWorkload>>>>,
}

impl ProfileCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the profiled workload, building and profiling it on first
    /// use. Concurrent callers for the same key block until the single
    /// profiling run finishes; callers for different keys proceed in
    /// parallel.
    pub fn get(&self, bench: &Benchmark, params: &Params) -> ProfiledWorkload {
        let slot = {
            let mut map = self.map.lock().expect("cache lock");
            Arc::clone(map.entry(JobKey::of(bench, params)).or_default())
        };
        slot.get_or_init(|| {
            let program = Arc::new(bench.build(params));
            let prof = Arc::new(profile(&program));
            ProfiledWorkload {
                program,
                profile: prof,
            }
        })
        .clone()
    }

    /// Number of distinct workloads profiled so far.
    pub fn len(&self) -> usize {
        self.map.lock().expect("cache lock").len()
    }

    /// Returns whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// One (workload, configuration) cell: the golden simulation and the three
/// model predictions, all derived from the workload's shared profile.
#[derive(Debug)]
pub struct CellRun {
    /// The configuration this cell was evaluated on.
    pub config: MachineConfig,
    /// Golden-reference simulation.
    pub sim: SimResult,
    /// Full RPPM prediction.
    pub rppm: Prediction,
    /// MAIN baseline prediction (cycles).
    pub main_cycles: f64,
    /// CRIT baseline prediction (cycles).
    pub crit_cycles: f64,
}

impl CellRun {
    /// Relative error of the RPPM prediction vs. simulation.
    pub fn rppm_error(&self) -> f64 {
        rppm_core::abs_pct_error(self.rppm.total_cycles, self.sim.total_cycles)
    }

    /// Relative error of the MAIN baseline vs. simulation.
    pub fn main_error(&self) -> f64 {
        rppm_core::abs_pct_error(self.main_cycles, self.sim.total_cycles)
    }

    /// Relative error of the CRIT baseline vs. simulation.
    pub fn crit_error(&self) -> f64 {
        rppm_core::abs_pct_error(self.crit_cycles, self.sim.total_cycles)
    }
}

/// All results for one workload job: the shared profile plus one [`CellRun`]
/// per planned configuration (in plan order).
#[derive(Debug)]
pub struct WorkloadRuns {
    /// The benchmark.
    pub bench: Benchmark,
    /// Generation parameters.
    pub params: Params,
    /// The workload's shared program + profile.
    pub workload: ProfiledWorkload,
    /// One cell per configuration, in [`ExperimentPlan::configs`] order.
    pub cells: Vec<CellRun>,
}

impl WorkloadRuns {
    /// The cell for the single-config common case.
    ///
    /// # Panics
    ///
    /// Panics if the plan had more than one configuration.
    pub fn only(&self) -> &CellRun {
        assert_eq!(self.cells.len(), 1, "plan has multiple configs");
        &self.cells[0]
    }
}

/// A set of (workload, params) jobs crossed with machine configurations.
#[derive(Debug, Clone)]
pub struct ExperimentPlan {
    /// Workload jobs (profiled once each).
    pub workloads: Vec<(Benchmark, Params)>,
    /// Configurations every workload is simulated and predicted on.
    pub configs: Vec<MachineConfig>,
}

impl ExperimentPlan {
    /// Plans `benches` × `configs` with uniform `params`.
    pub fn cross(
        benches: impl IntoIterator<Item = Benchmark>,
        params: Params,
        configs: Vec<MachineConfig>,
    ) -> Self {
        ExperimentPlan {
            workloads: benches.into_iter().map(|b| (b, params)).collect(),
            configs,
        }
    }

    /// Plans `benches` on a single configuration.
    pub fn single_config(
        benches: impl IntoIterator<Item = Benchmark>,
        params: Params,
        config: MachineConfig,
    ) -> Self {
        Self::cross(benches, params, vec![config])
    }

    /// Runs the plan on `jobs` worker threads, sharing `cache` for
    /// profiles. Two phases, each fanned out over a [`std::thread::scope`]
    /// pool: first every distinct workload is built + profiled (exactly
    /// once, even if it appears in several jobs or was already cached),
    /// then every (workload, config) cell simulates and predicts against
    /// the shared profile. Results are ordered by plan position —
    /// independent of `jobs` and of scheduling.
    pub fn run(&self, cache: &ProfileCache, jobs: usize) -> Vec<WorkloadRuns> {
        // Phase 1: profile each distinct workload once.
        let mut seen = HashMap::new();
        for (b, p) in &self.workloads {
            seen.entry(JobKey::of(b, p)).or_insert((b, p));
        }
        let unique: Vec<_> = seen.into_values().collect();
        parallel_for(jobs, unique.len(), |i| {
            let (b, p) = unique[i];
            cache.get(b, p);
        });

        // Phase 2: one job per (workload, config) cell.
        let profiled: Vec<ProfiledWorkload> = self
            .workloads
            .iter()
            .map(|(b, p)| cache.get(b, p))
            .collect();
        let n_cfg = self.configs.len();
        let cells: Vec<Mutex<Option<CellRun>>> = (0..self.workloads.len() * n_cfg)
            .map(|_| Mutex::new(None))
            .collect();
        parallel_for(jobs, cells.len(), |i| {
            let (wi, ci) = (i / n_cfg, i % n_cfg);
            let config = &self.configs[ci];
            let w = &profiled[wi];
            let sim = simulate(&w.program, config);
            let rppm = predict(&w.profile, config);
            let main_cycles = predict_main(&w.profile, config);
            let crit_cycles = predict_crit(&w.profile, config);
            *cells[i].lock().expect("cell lock") = Some(CellRun {
                config: config.clone(),
                sim,
                rppm,
                main_cycles,
                crit_cycles,
            });
        });

        let mut cells = cells.into_iter();
        self.workloads
            .iter()
            .zip(profiled)
            .map(|(&(bench, params), workload)| WorkloadRuns {
                bench,
                params,
                workload,
                cells: cells
                    .by_ref()
                    .take(n_cfg)
                    .map(|c| c.into_inner().expect("cell lock").expect("cell filled"))
                    .collect(),
            })
            .collect()
    }
}

/// Default worker count: one per available core.
pub fn default_jobs() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Runs `f(0..n)` on up to `jobs` scoped worker threads, dynamically
/// load-balanced. With `jobs <= 1` (or `n <= 1`) runs inline on the caller
/// thread. Panics in `f` propagate to the caller.
pub fn parallel_for(jobs: usize, n: usize, f: impl Fn(usize) + Sync) {
    let jobs = jobs.clamp(1, n.max(1));
    if jobs == 1 {
        for i in 0..n {
            f(i);
        }
        return;
    }
    let next = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..jobs {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                f(i);
            });
        }
    });
}

/// A simple aligned-column row builder for harness output.
#[derive(Debug, Default)]
pub struct Row {
    cells: Vec<String>,
}

impl Row {
    /// Starts an empty row.
    pub fn new() -> Self {
        Row::default()
    }

    /// Appends a left-aligned cell of the given width.
    pub fn cell(mut self, width: usize, s: impl std::fmt::Display) -> Self {
        self.cells.push(format!("{s:<width$}"));
        self
    }

    /// Appends a right-aligned cell of the given width.
    pub fn rcell(mut self, width: usize, s: impl std::fmt::Display) -> Self {
        self.cells.push(format!("{s:>width$}"));
        self
    }

    /// Renders the row (no trailing newline).
    pub fn render(self) -> String {
        self.cells.join("  ")
    }

    /// Appends the rendered row plus newline to `out`.
    pub fn line(self, out: &mut String) {
        out.push_str(&self.render());
        out.push('\n');
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rppm_trace::DesignPoint;

    #[test]
    fn pipeline_runs_end_to_end() {
        let cache = ProfileCache::new();
        let bench = rppm_workloads::by_name("pathfinder").expect("known");
        let plan = ExperimentPlan::single_config(
            [bench],
            Params {
                scale: 0.02,
                seed: 1,
            },
            DesignPoint::Base.config(),
        );
        let runs = plan.run(&cache, 1);
        assert_eq!(runs.len(), 1);
        let run = runs[0].only();
        assert!(run.sim.total_cycles > 0.0);
        assert!(run.rppm.total_cycles > 0.0);
        assert!(run.main_cycles > 0.0);
        assert!(run.crit_cycles > 0.0);
        assert!(run.rppm_error().is_finite());
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn duplicate_jobs_share_one_profile() {
        let cache = ProfileCache::new();
        let bench = rppm_workloads::by_name("nn").expect("known");
        let params = Params {
            scale: 0.02,
            seed: 1,
        };
        // Same workload listed twice, two configs: one profile total.
        let plan = ExperimentPlan::cross(
            [bench, bench],
            params,
            vec![DesignPoint::Base.config(), DesignPoint::Big.config()],
        );
        let runs = plan.run(&cache, 4);
        assert_eq!(runs.len(), 2);
        assert_eq!(cache.len(), 1);
        assert!(Arc::ptr_eq(
            &runs[0].workload.profile,
            &runs[1].workload.profile
        ));
        assert_eq!(runs[0].cells.len(), 2);
    }

    #[test]
    fn parallel_for_covers_every_index() {
        let hits: Vec<AtomicUsize> = (0..100).map(|_| AtomicUsize::new(0)).collect();
        parallel_for(4, hits.len(), |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn row_renders_aligned() {
        let mut out = String::new();
        Row::new().cell(6, "ab").rcell(5, 42).line(&mut out);
        assert_eq!(out, "ab         42\n");
    }
}

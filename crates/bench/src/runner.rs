//! The profile-once experiment engine.
//!
//! RPPM's headline workflow is "profile once, predict many": one
//! microarchitecture-independent profile per workload, amortized over every
//! design point it is evaluated on. [`ExperimentPlan`] is that workflow as
//! an API — a set of (workload, params) jobs crossed with machine
//! configurations, where profiling happens exactly once per workload (the
//! shared [`ProfileCache`]) and the per-cell work (golden simulation +
//! model predictions) fans out over a scoped thread pool.
//!
//! Results are placed by (workload, config) index, so output is
//! byte-identical no matter how many worker threads run the plan.

use rppm_core::{predict, predict_crit, predict_main, Prediction};
use rppm_sim::{simulate, SimResult};
use rppm_trace::{program_fingerprint, read_program_any, MachineConfig, Program, TraceFileError};
use rppm_workloads::{Benchmark, Params, Suite};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

// The amortization engine itself was promoted out of this crate: the cache
// lives in `rppm-profiler` and the scoped fan-out in `rppm-core`, shared
// with the `rppm::Session` facade. Re-exported here so harness code keeps
// its historical paths.
pub use rppm_core::{default_jobs, parallel_for};
pub use rppm_profiler::{ProfileCache, ProfileKey, ProfiledWorkload};

/// A trace imported from an on-disk file (see `rppm_trace::file`), ready to
/// be planned like any built-in benchmark. The program is held behind an
/// [`Arc`] and fingerprinted once, so planning it is cheap and profile
/// caching keys on content, not on file identity.
#[derive(Debug, Clone)]
pub struct ImportedTrace {
    program: Arc<Program>,
    fingerprint: u64,
}

impl ImportedTrace {
    /// Wraps an already-imported program.
    pub fn new(program: Program) -> Self {
        let fingerprint = program_fingerprint(&program);
        ImportedTrace {
            program: Arc::new(program),
            fingerprint,
        }
    }

    /// Reads, validates and wraps the trace file at `path`. The format is
    /// auto-detected by magic bytes: `RPT1` binary containers and JSON
    /// interchange files are both accepted, and twins of the same trace in
    /// either format share one content fingerprint (and therefore one
    /// cached profile).
    ///
    /// # Errors
    ///
    /// Propagates every `rppm_trace` import failure (JSON or binary).
    pub fn from_file(path: impl AsRef<std::path::Path>) -> Result<Self, TraceFileError> {
        read_program_any(path).map(Self::new)
    }

    /// The workload name recorded in the trace.
    pub fn name(&self) -> &str {
        &self.program.name
    }

    /// The imported program.
    pub fn program(&self) -> &Arc<Program> {
        &self.program
    }

    /// Content fingerprint (stable across re-imports of identical files).
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }
}

/// Anything an [`ExperimentPlan`] can run: a built-in generator from the
/// workload catalog, or a trace imported from a file. Imported traces are
/// first-class — they profile once through the same [`ProfileCache`] and
/// appear in every report alongside the built-ins.
#[derive(Debug, Clone)]
pub enum WorkloadSpec {
    /// A catalog benchmark, generated from [`Params`].
    Builtin(Benchmark),
    /// An externally collected trace (fixed dynamic stream; [`Params`] do
    /// not apply).
    Imported(ImportedTrace),
}

impl WorkloadSpec {
    /// The workload's display name.
    pub fn name(&self) -> &str {
        match self {
            WorkloadSpec::Builtin(b) => b.name,
            WorkloadSpec::Imported(t) => t.name(),
        }
    }

    /// Suite column label: `rodinia`, `parsec`, or `imported`.
    pub fn suite_label(&self) -> &'static str {
        match self {
            WorkloadSpec::Builtin(b) => match b.suite {
                Suite::Rodinia => "rodinia",
                Suite::Parsec => "parsec",
            },
            WorkloadSpec::Imported(_) => "imported",
        }
    }

    /// Whether this workload came from a trace file.
    pub fn is_imported(&self) -> bool {
        matches!(self, WorkloadSpec::Imported(_))
    }

    /// Materializes the program (generates builtins; shares imports).
    fn build(&self, params: &Params) -> Arc<Program> {
        match self {
            WorkloadSpec::Builtin(b) => Arc::new(b.build(params)),
            WorkloadSpec::Imported(t) => Arc::clone(&t.program),
        }
    }
}

impl From<Benchmark> for WorkloadSpec {
    fn from(b: Benchmark) -> Self {
        WorkloadSpec::Builtin(b)
    }
}

impl From<ImportedTrace> for WorkloadSpec {
    fn from(t: ImportedTrace) -> Self {
        WorkloadSpec::Imported(t)
    }
}

/// Returns the profiled workload for `(spec, params)`, building and
/// profiling it through `cache` on first use. Builtins are keyed by name
/// and generation parameters (same key ⇒ bit-identical program and
/// profile); imported traces by content fingerprint (their dynamic stream
/// is fixed, so [`Params`] are deliberately not part of the key).
pub fn profiled(cache: &ProfileCache, spec: &WorkloadSpec, params: &Params) -> ProfiledWorkload {
    cache.get_or_profile(key_of(spec, params), || spec.build(params))
}

fn key_of(spec: &WorkloadSpec, params: &Params) -> ProfileKey {
    match spec {
        WorkloadSpec::Builtin(b) => ProfileKey::generated(b.name, params.scale, params.seed),
        WorkloadSpec::Imported(t) => ProfileKey::fingerprint(t.fingerprint),
    }
}

/// One (workload, configuration) cell: the golden simulation and the three
/// model predictions, all derived from the workload's shared profile.
#[derive(Debug)]
pub struct CellRun {
    /// The configuration this cell was evaluated on.
    pub config: MachineConfig,
    /// Golden-reference simulation.
    pub sim: SimResult,
    /// Full RPPM prediction.
    pub rppm: Prediction,
    /// MAIN baseline prediction (cycles).
    pub main_cycles: f64,
    /// CRIT baseline prediction (cycles).
    pub crit_cycles: f64,
}

impl CellRun {
    /// Relative error of the RPPM prediction vs. simulation.
    pub fn rppm_error(&self) -> f64 {
        rppm_core::abs_pct_error(self.rppm.total_cycles, self.sim.total_cycles)
    }

    /// Relative error of the MAIN baseline vs. simulation.
    pub fn main_error(&self) -> f64 {
        rppm_core::abs_pct_error(self.main_cycles, self.sim.total_cycles)
    }

    /// Relative error of the CRIT baseline vs. simulation.
    pub fn crit_error(&self) -> f64 {
        rppm_core::abs_pct_error(self.crit_cycles, self.sim.total_cycles)
    }
}

/// All results for one workload job: the shared profile plus one [`CellRun`]
/// per planned configuration (in plan order).
#[derive(Debug)]
pub struct WorkloadRuns {
    /// The workload (builtin benchmark or imported trace).
    pub spec: WorkloadSpec,
    /// Generation parameters (ignored for imported traces).
    pub params: Params,
    /// The workload's shared program + profile.
    pub workload: ProfiledWorkload,
    /// One cell per configuration, in [`ExperimentPlan::configs`] order.
    pub cells: Vec<CellRun>,
}

impl WorkloadRuns {
    /// The cell for the single-config common case.
    ///
    /// # Panics
    ///
    /// Panics if the plan had more than one configuration.
    pub fn only(&self) -> &CellRun {
        assert_eq!(self.cells.len(), 1, "plan has multiple configs");
        &self.cells[0]
    }
}

/// A set of (workload, params) jobs crossed with machine configurations.
#[derive(Debug, Clone)]
pub struct ExperimentPlan {
    /// Workload jobs (profiled once each).
    pub workloads: Vec<(WorkloadSpec, Params)>,
    /// Configurations every workload is simulated and predicted on.
    pub configs: Vec<MachineConfig>,
}

impl ExperimentPlan {
    /// Plans `workloads` × `configs` with uniform `params`. Accepts any mix
    /// of [`Benchmark`]s, [`ImportedTrace`]s and [`WorkloadSpec`]s.
    pub fn cross<I>(workloads: I, params: Params, configs: Vec<MachineConfig>) -> Self
    where
        I: IntoIterator,
        I::Item: Into<WorkloadSpec>,
    {
        ExperimentPlan {
            workloads: workloads.into_iter().map(|w| (w.into(), params)).collect(),
            configs,
        }
    }

    /// Plans `workloads` on a single configuration.
    pub fn single_config<I>(workloads: I, params: Params, config: MachineConfig) -> Self
    where
        I: IntoIterator,
        I::Item: Into<WorkloadSpec>,
    {
        Self::cross(workloads, params, vec![config])
    }

    /// Runs the plan on `jobs` worker threads, sharing `cache` for
    /// profiles. Two phases, each fanned out over a [`std::thread::scope`]
    /// pool: first every distinct workload is built + profiled (exactly
    /// once, even if it appears in several jobs or was already cached),
    /// then every (workload, config) cell simulates and predicts against
    /// the shared profile. Results are ordered by plan position —
    /// independent of `jobs` and of scheduling.
    pub fn run(&self, cache: &ProfileCache, jobs: usize) -> Vec<WorkloadRuns> {
        // Phase 1: profile each distinct workload once.
        let mut seen = HashMap::new();
        for (w, p) in &self.workloads {
            seen.entry(key_of(w, p)).or_insert((w, p));
        }
        let unique: Vec<_> = seen.into_values().collect();
        parallel_for(jobs, unique.len(), |i| {
            let (w, p) = unique[i];
            profiled(cache, w, p);
        });

        // Phase 2: one job per (workload, config) cell.
        let shared: Vec<ProfiledWorkload> = self
            .workloads
            .iter()
            .map(|(w, p)| profiled(cache, w, p))
            .collect();
        let n_cfg = self.configs.len();
        let cells: Vec<Mutex<Option<CellRun>>> = (0..self.workloads.len() * n_cfg)
            .map(|_| Mutex::new(None))
            .collect();
        parallel_for(jobs, cells.len(), |i| {
            let (wi, ci) = (i / n_cfg, i % n_cfg);
            let config = &self.configs[ci];
            let w = &shared[wi];
            let sim = simulate(&w.program, config);
            let rppm = predict(&w.profile, config);
            let main_cycles = predict_main(&w.profile, config);
            let crit_cycles = predict_crit(&w.profile, config);
            *cells[i].lock().expect("cell lock") = Some(CellRun {
                config: config.clone(),
                sim,
                rppm,
                main_cycles,
                crit_cycles,
            });
        });

        let mut cells = cells.into_iter();
        self.workloads
            .iter()
            .zip(shared)
            .map(|((spec, params), workload)| WorkloadRuns {
                spec: spec.clone(),
                params: *params,
                workload,
                cells: cells
                    .by_ref()
                    .take(n_cfg)
                    .map(|c| c.into_inner().expect("cell lock").expect("cell filled"))
                    .collect(),
            })
            .collect()
    }
}

/// A simple aligned-column row builder for harness output.
#[derive(Debug, Default)]
pub struct Row {
    cells: Vec<String>,
}

impl Row {
    /// Starts an empty row.
    pub fn new() -> Self {
        Row::default()
    }

    /// Appends a left-aligned cell of the given width.
    pub fn cell(mut self, width: usize, s: impl std::fmt::Display) -> Self {
        self.cells.push(format!("{s:<width$}"));
        self
    }

    /// Appends a right-aligned cell of the given width.
    pub fn rcell(mut self, width: usize, s: impl std::fmt::Display) -> Self {
        self.cells.push(format!("{s:>width$}"));
        self
    }

    /// Renders the row (no trailing newline).
    pub fn render(self) -> String {
        self.cells.join("  ")
    }

    /// Appends the rendered row plus newline to `out`.
    pub fn line(self, out: &mut String) {
        out.push_str(&self.render());
        out.push('\n');
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rppm_trace::DesignPoint;

    #[test]
    fn pipeline_runs_end_to_end() {
        let cache = ProfileCache::new();
        let bench = rppm_workloads::by_name("pathfinder").expect("known");
        let plan = ExperimentPlan::single_config(
            [bench],
            Params {
                scale: 0.02,
                seed: 1,
            },
            DesignPoint::Base.config(),
        );
        let runs = plan.run(&cache, 1);
        assert_eq!(runs.len(), 1);
        let run = runs[0].only();
        assert!(run.sim.total_cycles > 0.0);
        assert!(run.rppm.total_cycles > 0.0);
        assert!(run.main_cycles > 0.0);
        assert!(run.crit_cycles > 0.0);
        assert!(run.rppm_error().is_finite());
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn duplicate_jobs_share_one_profile() {
        let cache = ProfileCache::new();
        let bench = rppm_workloads::by_name("nn").expect("known");
        let params = Params {
            scale: 0.02,
            seed: 1,
        };
        // Same workload listed twice, two configs: one profile total.
        let plan = ExperimentPlan::cross(
            [bench, bench],
            params,
            vec![DesignPoint::Base.config(), DesignPoint::Big.config()],
        );
        let runs = plan.run(&cache, 4);
        assert_eq!(runs.len(), 2);
        assert_eq!(cache.len(), 1);
        assert!(Arc::ptr_eq(
            &runs[0].workload.profile,
            &runs[1].workload.profile
        ));
        assert_eq!(runs[0].cells.len(), 2);
    }

    #[test]
    fn imported_traces_are_cached_by_content() {
        let cache = ProfileCache::new();
        let params = Params {
            scale: 0.02,
            seed: 1,
        };
        let bench = rppm_workloads::by_name("nn").expect("known");
        let text = rppm_trace::export_program(&bench.build(&params)).expect("exports");
        // Two independent imports of the same file content...
        let a = ImportedTrace::new(rppm_trace::import_program(&text).expect("imports"));
        let b = ImportedTrace::new(rppm_trace::import_program(&text).expect("imports"));
        assert_eq!(a.fingerprint(), b.fingerprint());
        let plan = ExperimentPlan::single_config([a, b], params, DesignPoint::Base.config());
        let runs = plan.run(&cache, 2);
        // ...share one profile, and Params are not part of an import's key.
        assert_eq!(cache.len(), 1);
        assert!(Arc::ptr_eq(
            &runs[0].workload.profile,
            &runs[1].workload.profile
        ));
        assert!(runs[0].spec.is_imported());
        assert_eq!(runs[0].spec.name(), "nn");
        assert_eq!(runs[0].spec.suite_label(), "imported");
        // The imported trace predicts bit-identically to the builtin it was
        // exported from.
        let builtin = profiled(&cache, &WorkloadSpec::from(bench), &params);
        assert_eq!(cache.len(), 2);
        assert_eq!(
            predict(&builtin.profile, &DesignPoint::Base.config())
                .total_cycles
                .to_bits(),
            runs[0].only().rppm.total_cycles.to_bits()
        );
    }

    #[test]
    fn binary_and_json_twins_share_one_profile() {
        let cache = ProfileCache::new();
        let params = Params {
            scale: 0.02,
            seed: 1,
        };
        let bench = rppm_workloads::by_name("lud").expect("known");
        let program = bench.build(&params);
        let json = rppm_trace::export_program(&program).expect("exports json");
        let bin = rppm_trace::export_program_binary(&program).expect("exports binary");
        // The same trace imported once from each container format...
        let a = ImportedTrace::new(rppm_trace::import_program(&json).expect("imports"));
        let b = ImportedTrace::new(rppm_trace::import_program_binary(&bin).expect("imports"));
        assert_eq!(a.fingerprint(), b.fingerprint());
        let plan = ExperimentPlan::single_config([a, b], params, DesignPoint::Base.config());
        let runs = plan.run(&cache, 2);
        // ...is one workload: one profile, bit-identical predictions.
        assert_eq!(cache.len(), 1);
        assert_eq!(
            runs[0].only().rppm.total_cycles.to_bits(),
            runs[1].only().rppm.total_cycles.to_bits()
        );
    }

    #[test]
    fn row_renders_aligned() {
        let mut out = String::new();
        Row::new().cell(6, "ab").rcell(5, 42).line(&mut out);
        assert_eq!(out, "ab         42\n");
    }
}

//! Shared plumbing for the table/figure harness binaries.

use rppm_core::{predict, predict_crit, predict_main, Prediction};
use rppm_profiler::{profile, ApplicationProfile};
use rppm_sim::{simulate, SimResult};
use rppm_trace::{MachineConfig, Program};
use rppm_workloads::{Benchmark, Params};

/// Everything produced by running one benchmark through the full pipeline
/// on one configuration: the workload, its one-time profile, the golden
/// simulation and the three model predictions.
#[derive(Debug)]
pub struct BenchmarkRun {
    /// Benchmark name.
    pub name: String,
    /// The workload.
    pub program: Program,
    /// One-time microarchitecture-independent profile.
    pub profile: ApplicationProfile,
    /// Golden-reference simulation.
    pub sim: SimResult,
    /// Full RPPM prediction.
    pub rppm: Prediction,
    /// MAIN baseline prediction (cycles).
    pub main_cycles: f64,
    /// CRIT baseline prediction (cycles).
    pub crit_cycles: f64,
}

impl BenchmarkRun {
    /// Relative error of the RPPM prediction vs. simulation.
    pub fn rppm_error(&self) -> f64 {
        rppm_core::abs_pct_error(self.rppm.total_cycles, self.sim.total_cycles)
    }

    /// Relative error of the MAIN baseline vs. simulation.
    pub fn main_error(&self) -> f64 {
        rppm_core::abs_pct_error(self.main_cycles, self.sim.total_cycles)
    }

    /// Relative error of the CRIT baseline vs. simulation.
    pub fn crit_error(&self) -> f64 {
        rppm_core::abs_pct_error(self.crit_cycles, self.sim.total_cycles)
    }
}

/// Runs the full pipeline for one benchmark on one configuration.
pub fn run_benchmark(bench: &Benchmark, params: &Params, config: &MachineConfig) -> BenchmarkRun {
    let program = bench.build(params);
    let prof = profile(&program);
    let sim = simulate(&program, config);
    let rppm = predict(&prof, config);
    let main_cycles = predict_main(&prof, config);
    let crit_cycles = predict_crit(&prof, config);
    BenchmarkRun {
        name: bench.name.to_string(),
        program,
        profile: prof,
        sim,
        rppm,
        main_cycles,
        crit_cycles,
    }
}

/// A simple aligned-column row printer for harness output.
#[derive(Debug, Default)]
pub struct Row {
    cells: Vec<String>,
}

impl Row {
    /// Starts an empty row.
    pub fn new() -> Self {
        Row::default()
    }

    /// Appends a left-aligned cell of the given width.
    pub fn cell(mut self, width: usize, s: impl std::fmt::Display) -> Self {
        self.cells.push(format!("{s:<width$}"));
        self
    }

    /// Appends a right-aligned cell of the given width.
    pub fn rcell(mut self, width: usize, s: impl std::fmt::Display) -> Self {
        self.cells.push(format!("{s:>width$}"));
        self
    }

    /// Renders the row.
    pub fn print(self) {
        println!("{}", self.cells.join("  "));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rppm_trace::DesignPoint;

    #[test]
    fn pipeline_runs_end_to_end() {
        let bench = rppm_workloads::by_name("pathfinder").expect("known");
        let run = run_benchmark(
            &bench,
            &Params {
                scale: 0.02,
                seed: 1,
            },
            &DesignPoint::Base.config(),
        );
        assert!(run.sim.total_cycles > 0.0);
        assert!(run.rppm.total_cycles > 0.0);
        assert!(run.main_cycles > 0.0);
        assert!(run.crit_cycles > 0.0);
        assert!(run.rppm_error().is_finite());
    }
}

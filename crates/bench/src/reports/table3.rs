//! Table III: dynamic synchronization events in the Parsec benchmarks,
//! counted by the profiler from the one-time profile (critical sections,
//! barriers, condition-variable events).
//!
//! Our analogs scale the dynamic counts down (10-350x depending on the
//! benchmark) to keep golden-reference simulation fast; the shape — which
//! benchmark is dominated by which primitive — is the reproduced result.

use super::{arr, obj, Report, RunCtx};
use crate::runner::{ExperimentPlan, Row};
use rppm_workloads::{Params, PARSEC};
use serde_json::Value;

/// Paper's Table III rows for reference (CS, barriers, cond. vars).
/// Expansion-set analogs and imported traces are not in the paper and get
/// an `n/a` reference column.
const PAPER: [(&str, &str, &str, &str); 10] = [
    ("blackscholes", "-", "-", "-"),
    ("bodytrack", "6,700", "98", "25"),
    ("canneal", "4", "64", "-"),
    ("facesim", "10,472", "-", "1,232"),
    ("fluidanimate", "2,140,206", "50", "-"),
    ("freqmine", "-", "-", "-"),
    ("raytrace", "47", "-", "15"),
    ("streamcluster_p", "68", "13,003", "34"),
    ("swaptions", "-", "-", "-"),
    ("vips", "8,973", "-", "1,433"),
];

fn paper_row(name: &str) -> (&'static str, &'static str, &'static str) {
    PAPER
        .iter()
        .find(|r| r.0 == name)
        .map(|r| (r.1, r.2, r.3))
        .unwrap_or(("n/a", "n/a", "n/a"))
}

/// Renders Table III at the given work scale.
pub fn table3(scale: f64, ctx: &RunCtx<'_>) -> Report {
    let params = Params {
        scale,
        ..Params::full()
    };
    // Profiles only — no configurations to simulate.
    let runs =
        ExperimentPlan::cross(ctx.specs(PARSEC), params, Vec::new()).run(ctx.cache, ctx.jobs);

    let mut out = String::new();
    out.push_str(&format!(
        "Table III: dynamic synchronization events (Parsec analogs, scale {scale})\n\n"
    ));
    Row::new()
        .cell(16, "benchmark")
        .rcell(10, "CS")
        .rcell(10, "barriers")
        .rcell(10, "cond.var")
        .cell(3, "")
        .cell(30, "paper (CS / barrier / cond)")
        .line(&mut out);
    out.push_str(&"-".repeat(84));
    out.push('\n');

    let mut rows = Vec::new();
    for run in &runs {
        let paper = paper_row(run.spec.name());
        let prof = &run.workload.profile;
        let (cs, bar, cond) = prof.sync_event_counts();
        let fmt = |v: u64| {
            if v == 0 {
                "-".to_string()
            } else {
                v.to_string()
            }
        };
        Row::new()
            .cell(16, run.spec.name())
            .rcell(10, fmt(cs))
            .rcell(10, fmt(bar))
            .rcell(10, fmt(cond))
            .cell(3, "")
            .cell(30, format!("{} / {} / {}", paper.0, paper.1, paper.2))
            .line(&mut out);

        // Bonus: the profiler's condition-variable usage recognition
        // (Section III-A of the paper).
        let mut usages = Vec::new();
        for usage in prof.classify_cond_vars() {
            out.push_str(&format!("    cond-var usage: {usage:?}\n"));
            usages.push(Value::String(format!("{usage:?}")));
        }
        rows.push(obj([
            ("benchmark", Value::String(run.spec.name().to_string())),
            ("critical_sections", Value::U64(cs)),
            ("barriers", Value::U64(bar)),
            ("cond_vars", Value::U64(cond)),
            ("cond_var_usage", arr(usages)),
            (
                "paper",
                obj([
                    ("critical_sections", Value::String(paper.0.to_string())),
                    ("barriers", Value::String(paper.1.to_string())),
                    ("cond_vars", Value::String(paper.2.to_string())),
                ]),
            ),
        ]));
    }
    out.push('\n');
    out.push_str("Counts are scaled down vs. the paper (10-350x) to keep simulation fast;\n");
    out.push_str("the dominance pattern per benchmark is the reproduced result.\n");

    Report {
        name: "table3",
        text: out,
        json: obj([("scale", Value::F64(scale)), ("benchmarks", arr(rows))]),
    }
}

//! Table II: Rodinia benchmark analogs and their generation parameters —
//! the reproduction's equivalent of the paper's input-set table.

use super::{arr, obj, Report};
use crate::runner::Row;
use rppm_workloads::{Params, RODINIA};
use serde_json::Value;

/// Renders Table II at the given work scale.
pub fn table2(scale: f64) -> Report {
    let params = Params {
        scale,
        ..Params::full()
    };

    let mut out = String::new();
    out.push_str(&format!(
        "Table II: Rodinia analogs at scale {scale} (paper uses native inputs; see Table II there)\n\n"
    ));
    Row::new()
        .cell(16, "benchmark")
        .rcell(10, "threads")
        .rcell(12, "ops (ROI)")
        .rcell(10, "barriers")
        .line(&mut out);
    out.push_str(&"-".repeat(52));
    out.push('\n');

    let mut rows = Vec::new();
    for bench in RODINIA {
        let prog = bench.build(&params);
        let barriers: usize = prog
            .threads
            .iter()
            .map(|t| {
                t.sync_ops()
                    .filter(|op| matches!(op, rppm_trace::SyncOp::Barrier { .. }))
                    .count()
            })
            .sum();
        Row::new()
            .cell(16, bench.name)
            .rcell(10, prog.num_threads())
            .rcell(12, prog.total_ops())
            .rcell(10, barriers)
            .line(&mut out);
        rows.push(obj([
            ("benchmark", Value::String(bench.name.to_string())),
            ("threads", Value::U64(prog.num_threads() as u64)),
            ("ops", Value::U64(prog.total_ops())),
            ("barriers", Value::U64(barriers as u64)),
        ]));
    }

    Report {
        name: "table2",
        text: out,
        json: obj([("scale", Value::F64(scale)), ("benchmarks", arr(rows))]),
    }
}

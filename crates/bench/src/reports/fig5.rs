//! Figure 5: average per-thread CPI stacks, RPPM (left) versus simulation
//! (right), normalized to the simulated total.
//!
//! The paper attributes RPPM's residual error chiefly to the base and
//! data-memory components.

use super::{arr, obj, Report, RunCtx};
use crate::runner::{ExperimentPlan, Row};
use rppm_trace::CpiStack;
use rppm_workloads::Params;
use serde_json::Value;

fn print_stack(label: &str, s: &CpiStack, norm: f64, out: &mut String) {
    let mut row = Row::new().cell(10, label);
    for v in s.values() {
        row = row.rcell(8, format!("{:.3}", v / norm));
    }
    row.rcell(8, format!("{:.3}", s.total() / norm)).line(out);
}

fn stack_json(s: &CpiStack, norm: f64) -> Value {
    Value::Object(
        CpiStack::LABELS
            .iter()
            .zip(s.values())
            .map(|(l, v)| (l.to_string(), Value::F64(v / norm)))
            .chain([("total".to_string(), Value::F64(s.total() / norm))])
            .collect(),
    )
}

/// Renders Figure 5 at the given work scale; `only` restricts the output to
/// one benchmark.
pub fn fig5(scale: f64, only: Option<&str>, ctx: &RunCtx<'_>) -> Report {
    let params = Params {
        scale,
        ..Params::full()
    };
    let specs: Vec<_> = ctx
        .specs(rppm_workloads::all())
        .into_iter()
        .filter(|s| only.is_none_or(|f| s.name() == f))
        .collect();
    let runs =
        ExperimentPlan::single_config(specs, params, ctx.base.clone()).run(ctx.cache, ctx.jobs);

    let mut out = String::new();
    out.push_str(&format!(
        "Figure 5: normalized per-thread CPI stacks (RPPM vs simulation), scale {scale}\n\n"
    ));
    let mut header = Row::new().cell(10, "");
    for l in CpiStack::LABELS {
        header = header.rcell(8, l);
    }
    header.rcell(8, "total").line(&mut out);

    let mut rows = Vec::new();
    for run in &runs {
        let cell = run.only();
        // Per-thread mean stacks, normalized to the simulated mean total
        // (the paper normalizes both bars to simulation).
        let sim_stack = cell.sim.mean_cpi_stack();
        let rppm_stack = cell.rppm.mean_cpi_stack();
        let norm = sim_stack.total();
        out.push_str(&format!(
            "\n{} (sim {:.0} cycles total):\n",
            run.spec.name(),
            cell.sim.total_cycles
        ));
        print_stack("  RPPM", &rppm_stack, norm, &mut out);
        print_stack("  sim", &sim_stack, norm, &mut out);
        rows.push(obj([
            ("benchmark", Value::String(run.spec.name().to_string())),
            ("sim_total_cycles", Value::F64(cell.sim.total_cycles)),
            ("rppm_stack", stack_json(&rppm_stack, norm)),
            ("sim_stack", stack_json(&sim_stack, norm)),
        ]));
    }

    Report {
        name: "fig5",
        text: out,
        json: obj([("scale", Value::F64(scale)), ("benchmarks", arr(rows))]),
    }
}

//! Table I: accumulating prediction errors in barrier-synchronized
//! applications.
//!
//! A 1M-iteration loop is parallelized over `n` threads with a barrier per
//! round; per-thread inter-barrier predictions carry unbiased uniform noise
//! of ±1/5/10%. Single-threaded errors cancel; multi-threaded errors
//! accumulate as `E[max of n uniforms] = e·(n−1)/(n+1)`.

use super::{arr, obj, Report};
use crate::runner::Row;
use rppm_core::{accumulation_bias, accumulation_error};
use serde_json::Value;

const THREADS: [u32; 5] = [1, 2, 4, 8, 16];
const ERRORS: [f64; 3] = [0.01, 0.05, 0.10];

/// Renders Table I for a loop of `iterations` iterations.
pub fn table1(iterations: u64) -> Report {
    let mut out = String::new();
    out.push_str(&format!(
        "Table I: accumulating prediction errors (loop of {iterations} iterations)\n\n"
    ));
    Row::new()
        .cell(9, "#Threads")
        .rcell(12, "1%")
        .rcell(12, "5%")
        .rcell(12, "10%")
        .line(&mut out);
    out.push_str(&"-".repeat(48));
    out.push('\n');

    let mut measured_rows = Vec::new();
    for threads in THREADS {
        let mut row = Row::new().cell(9, threads);
        let mut cells = Vec::new();
        for (k, &e) in ERRORS.iter().enumerate() {
            let measured = accumulation_error(threads, e, iterations, 0xACC + k as u64);
            row = row.rcell(12, format!("{:.2}%", measured * 100.0));
            cells.push(Value::F64(measured));
        }
        row.line(&mut out);
        measured_rows.push(obj([
            ("threads", Value::U64(threads as u64)),
            ("errors", arr(cells)),
        ]));
    }

    out.push_str("\nClosed form e(n-1)/(n+1) for comparison:\n");
    let mut closed_rows = Vec::new();
    for threads in THREADS {
        let mut row = Row::new().cell(9, threads);
        let mut cells = Vec::new();
        for &e in &ERRORS {
            let bias = accumulation_bias(threads, e);
            row = row.rcell(12, format!("{:.2}%", bias * 100.0));
            cells.push(Value::F64(bias));
        }
        row.line(&mut out);
        closed_rows.push(obj([
            ("threads", Value::U64(threads as u64)),
            ("errors", arr(cells)),
        ]));
    }
    out.push('\n');
    out.push_str("Paper Table I: 2 threads: 0.33/1.67/3.34%; 4: 0.60/3.00/6.01%;\n");
    out.push_str("               8: 0.78/3.89/7.79%; 16: 0.88/4.41/8.83%.\n");

    Report {
        name: "table1",
        text: out,
        json: obj([
            ("iterations", Value::U64(iterations)),
            ("noise_levels", arr(ERRORS.map(Value::F64))),
            ("measured", arr(measured_rows)),
            ("closed_form", arr(closed_rows)),
        ]),
    }
}

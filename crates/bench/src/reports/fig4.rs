//! Figure 4: prediction error of MAIN, CRIT and RPPM versus cycle-level
//! simulation, for all Rodinia and Parsec analogs on the base quad-core
//! configuration.
//!
//! Paper result: MAIN averages ~45% error (outliers >100% on Parsec), CRIT
//! ~28%, RPPM 11.2% with a 23% maximum.

use super::{arr, obj, Report, RunCtx};
use crate::runner::{ExperimentPlan, Row};
use rppm_workloads::Params;
use serde_json::Value;

/// Renders Figure 4 at the given work scale.
pub fn fig4(scale: f64, ctx: &RunCtx<'_>) -> Report {
    let params = Params {
        scale,
        ..Params::full()
    };
    let runs =
        ExperimentPlan::single_config(ctx.specs(rppm_workloads::all()), params, ctx.base.clone())
            .run(ctx.cache, ctx.jobs);

    let mut out = String::new();
    out.push_str(&format!(
        "Figure 4: prediction error vs. simulation (base config, scale {scale})\n\n"
    ));
    Row::new()
        .cell(16, "benchmark")
        .cell(8, "suite")
        .rcell(9, "MAIN")
        .rcell(9, "CRIT")
        .rcell(9, "RPPM")
        .line(&mut out);
    out.push_str(&"-".repeat(58));
    out.push('\n');

    let mut main_errs = Vec::new();
    let mut crit_errs = Vec::new();
    let mut rppm_errs = Vec::new();
    let mut rows = Vec::new();
    let mut prev_suite: Option<&'static str> = None;

    for run in &runs {
        // Horizontal rule between suites (rodinia / parsec / imported).
        let suite = run.spec.suite_label();
        if prev_suite.is_some_and(|p| p != suite) {
            out.push_str(&"-".repeat(58));
            out.push('\n');
        }
        prev_suite = Some(suite);
        let cell = run.only();
        let (m, c, r) = (cell.main_error(), cell.crit_error(), cell.rppm_error());
        let over = cell.rppm.total_cycles >= cell.sim.total_cycles;
        let sign = if over { '+' } else { '-' };
        Row::new()
            .cell(16, run.spec.name())
            .cell(8, suite)
            .rcell(9, format!("{:.1}%", m * 100.0))
            .rcell(9, format!("{:.1}%", c * 100.0))
            .rcell(9, format!("{sign}{:.1}%", r * 100.0))
            .line(&mut out);
        main_errs.push(m);
        crit_errs.push(c);
        rppm_errs.push(r);
        rows.push(obj([
            ("benchmark", Value::String(run.spec.name().to_string())),
            ("suite", Value::String(suite.to_string())),
            ("main_error", Value::F64(m)),
            ("crit_error", Value::F64(c)),
            ("rppm_error", Value::F64(r)),
            ("rppm_signed_error", Value::F64(if over { r } else { -r })),
        ]));
    }

    out.push_str(&"-".repeat(58));
    out.push('\n');
    Row::new()
        .cell(25, "average")
        .rcell(9, format!("{:.1}%", rppm_core::mean(&main_errs) * 100.0))
        .rcell(9, format!("{:.1}%", rppm_core::mean(&crit_errs) * 100.0))
        .rcell(9, format!("{:.1}%", rppm_core::mean(&rppm_errs) * 100.0))
        .line(&mut out);
    Row::new()
        .cell(25, "max")
        .rcell(9, format!("{:.1}%", rppm_core::max(&main_errs) * 100.0))
        .rcell(9, format!("{:.1}%", rppm_core::max(&crit_errs) * 100.0))
        .rcell(9, format!("{:.1}%", rppm_core::max(&rppm_errs) * 100.0))
        .line(&mut out);
    out.push('\n');
    out.push_str("Paper: MAIN avg 45% (max >110%), CRIT avg 28%, RPPM avg 11.2% (max 23%).\n");

    Report {
        name: "fig4",
        text: out,
        json: obj([
            ("scale", Value::F64(scale)),
            ("benchmarks", arr(rows)),
            (
                "summary",
                obj([
                    ("main_avg", Value::F64(rppm_core::mean(&main_errs))),
                    ("crit_avg", Value::F64(rppm_core::mean(&crit_errs))),
                    ("rppm_avg", Value::F64(rppm_core::mean(&rppm_errs))),
                    ("main_max", Value::F64(rppm_core::max(&main_errs))),
                    ("crit_max", Value::F64(rppm_core::max(&crit_errs))),
                    ("rppm_max", Value::F64(rppm_core::max(&rppm_errs))),
                ]),
            ),
        ]),
    }
}

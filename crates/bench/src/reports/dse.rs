//! The `dse` report: the million-point DSE engine at validation scale.
//!
//! Runs the fixed 12-point [`ConfigSpace::tiny`] space on one benchmark:
//! every point is predicted through the batched precompute/evaluate path
//! *and* simulated for ground truth, so the report pins — and the golden
//! suite drift-gates — the predicted optimum, the Pareto-frontier
//! membership over (time, area, power) and the Table V-style deficiency
//! ladder of the new engine.

use super::{arr, obj, Report, RunCtx};
use crate::runner::{ExperimentPlan, Row, WorkloadSpec};
use rppm_core::{dse_row, sweep, ConfigSpace, Constraints, PreparedProfile};
use rppm_workloads::Params;
use serde_json::Value;
use std::sync::Arc;

const BOUNDS: [f64; 4] = [0.0, 0.01, 0.03, 0.05];
const WORKLOAD: &str = "kmeans";

/// Renders the DSE-engine report at the given work scale.
pub fn dse(scale: f64, ctx: &RunCtx<'_>) -> Report {
    let params = Params {
        scale,
        ..Params::full()
    };
    let space = ConfigSpace::tiny_from(ctx.base.clone());
    let configs: Vec<_> = (0..space.len()).map(|i| space.config(i)).collect();
    let spec = WorkloadSpec::from(rppm_workloads::by_name(WORKLOAD).expect("catalog workload"));
    let runs = ExperimentPlan::cross(vec![spec], params, configs).run(ctx.cache, ctx.jobs);
    let run = &runs[0];

    let predicted: Vec<f64> = run.cells.iter().map(|c| c.rppm.total_seconds).collect();
    let simulated: Vec<f64> = run.cells.iter().map(|c| c.sim.total_seconds).collect();
    let row = dse_row(WORKLOAD, &predicted, &simulated, &BOUNDS)
        .expect("one prediction and one simulation per point of the tiny space");

    // The same points through the batched engine: sweep() is bit-identical
    // to the scalar predictions above by construction, and adds the
    // frontier + optimum the golden baseline pins.
    let prep = PreparedProfile::new(Arc::clone(&run.workload.profile));
    let swept = sweep(&prep, &space, &Constraints::none(), &BOUNDS, ctx.jobs)
        .expect("tiny space is nonempty and unconstrained");
    assert_eq!(
        swept.best.seconds.to_bits(),
        predicted.iter().cloned().fold(f64::MAX, f64::min).to_bits(),
        "batched sweep drifted from the scalar predictions"
    );

    let mut out = String::new();
    out.push_str(&format!(
        "DSE engine: {WORKLOAD} over the {}-point tiny space (scale {scale})\n\n",
        swept.points
    ));
    Row::new()
        .cell(7, "point")
        .rcell(15, "predicted (ms)")
        .rcell(15, "simulated (ms)")
        .rcell(9, "frontier")
        .line(&mut out);
    out.push_str(&"-".repeat(50));
    out.push('\n');
    let mut points_json = Vec::new();
    for (i, (p, s)) in predicted.iter().zip(&simulated).enumerate() {
        let on_frontier = swept.frontier.iter().any(|f| f.index == i);
        Row::new()
            .cell(7, format!("#{i}"))
            .rcell(15, format!("{:.6}", p * 1e3))
            .rcell(15, format!("{:.6}", s * 1e3))
            .rcell(9, if on_frontier { "yes" } else { "" })
            .line(&mut out);
        points_json.push(obj([
            ("index", Value::U64(i as u64)),
            ("predicted_seconds", Value::F64(*p)),
            ("simulated_seconds", Value::F64(*s)),
            ("frontier", Value::Bool(on_frontier)),
        ]));
    }
    out.push('\n');
    out.push_str(&format!(
        "predicted optimum: #{} ({:.6} ms); frontier: {} of {} points\n",
        swept.best.index,
        swept.best.seconds * 1e3,
        swept.frontier.len(),
        swept.points
    ));
    let mut cells_json = Vec::new();
    out.push_str("deficiency:");
    for &(bound, deficiency, candidates) in &row.cells {
        out.push_str(&format!(
            "  <{:.0}%: {:.2}% ({candidates} cand.)",
            bound * 100.0,
            deficiency * 100.0
        ));
        cells_json.push(obj([
            ("bound", Value::F64(bound)),
            ("deficiency", Value::F64(deficiency)),
            ("candidates", Value::U64(candidates as u64)),
        ]));
    }
    out.push('\n');

    Report {
        name: "dse",
        text: out,
        json: obj([
            ("scale", Value::F64(scale)),
            ("workload", Value::String(WORKLOAD.to_string())),
            ("points", arr(points_json)),
            ("best_index", Value::U64(swept.best.index as u64)),
            (
                "frontier",
                arr(swept
                    .frontier
                    .iter()
                    .map(|f| Value::U64(f.index as u64))
                    .collect::<Vec<_>>()),
            ),
            ("deficiency", arr(cells_json)),
        ]),
    }
}

//! Ablation study: re-run the Figure 4 accuracy suite with each model
//! refinement (DESIGN.md §7) disabled in turn, quantifying what every
//! mechanism contributes to RPPM's accuracy.
//!
//! The knobs are env-var overrides read by `rppm-core::eq1` at every
//! `predict` call, and profiles/simulations are knob-independent — so one
//! plan run supplies the golden simulations and the one-time profiles, and
//! each variant only re-predicts. Variants run sequentially (the
//! environment is process-global state); the re-predictions inside a
//! variant fan out in parallel under a then-stable environment.

use super::{arr, obj, Report, RunCtx};
use crate::runner::{parallel_for, ExperimentPlan, Row};
use rppm_core::predict;
use rppm_workloads::Params;
use serde_json::Value;
use std::sync::Mutex;

/// Every knob any variant touches (cleared around each variant).
const KNOBS: [&str; 5] = [
    "RPPM_KAPPA",
    "RPPM_MLP_EFF",
    "RPPM_MLP_CAP",
    "RPPM_NO_CHAIN_BOUND",
    "RPPM_NO_EXPOSURE",
];

const VARIANTS: &[(&str, &[(&str, &str)])] = &[
    ("full model", &[]),
    (
        "no path-selection factor (kappa=1)",
        &[("RPPM_KAPPA", "1.0")],
    ),
    (
        "no MLP efficiency (gamma=cap=1)",
        &[("RPPM_MLP_EFF", "1.0"), ("RPPM_MLP_CAP", "1.0")],
    ),
    ("no chain bound", &[("RPPM_NO_CHAIN_BOUND", "1")]),
    ("no retirement exposure", &[("RPPM_NO_EXPOSURE", "1")]),
];

/// Renders the ablation study at the given work scale.
pub fn ablation(scale: f64, ctx: &RunCtx<'_>) -> Report {
    let params = Params {
        scale,
        ..Params::full()
    };
    let config = ctx.base.clone();
    let runs =
        ExperimentPlan::single_config(ctx.specs(rppm_workloads::all()), params, config.clone())
            .run(ctx.cache, ctx.jobs);

    let mut out = String::new();
    out.push_str(&format!(
        "Ablation: RPPM suite error (all {} benchmarks, base config, scale {scale})\n\n",
        runs.len()
    ));
    Row::new()
        .cell(38, "variant")
        .rcell(10, "avg err")
        .rcell(10, "max err")
        .line(&mut out);
    out.push_str(&"-".repeat(60));
    out.push('\n');

    // Snapshot caller-set knobs so they can be restored afterwards: this
    // function owns the knob environment only for its own duration. (Env
    // mutation is process-global — call this from one thread at a time,
    // which is how `run_all` and the binary drive it.)
    let prior: Vec<(&str, Option<String>)> =
        KNOBS.iter().map(|&k| (k, std::env::var(k).ok())).collect();

    let mut rows = Vec::new();
    for (name, env) in VARIANTS {
        for k in KNOBS {
            std::env::remove_var(k);
        }
        for (k, v) in *env {
            std::env::set_var(k, v);
        }
        // Re-predict only: simulations and profiles are knob-independent.
        let errs = Mutex::new(vec![0.0f64; runs.len()]);
        parallel_for(ctx.jobs, runs.len(), |i| {
            let run = &runs[i];
            let pred = predict(&run.workload.profile, &config);
            let err = rppm_core::abs_pct_error(pred.total_cycles, run.only().sim.total_cycles);
            errs.lock().expect("errs lock")[i] = err;
        });
        let errs = errs.into_inner().expect("errs lock");
        let (mean, max) = (rppm_core::mean(&errs), rppm_core::max(&errs));
        Row::new()
            .cell(38, *name)
            .rcell(10, format!("{:.1}%", mean * 100.0))
            .rcell(10, format!("{:.1}%", max * 100.0))
            .line(&mut out);
        rows.push(obj([
            ("variant", Value::String(name.to_string())),
            ("avg_error", Value::F64(mean)),
            ("max_error", Value::F64(max)),
            (
                "env",
                Value::Object(
                    env.iter()
                        .map(|(k, v)| (k.to_string(), Value::String(v.to_string())))
                        .collect(),
                ),
            ),
        ]));
    }
    for (k, v) in prior {
        match v {
            Some(v) => std::env::set_var(k, v),
            None => std::env::remove_var(k),
        }
    }
    out.push('\n');
    out.push_str("Each row disables one DESIGN.md §7 refinement; deltas vs. the first row\n");
    out.push_str("quantify that mechanism's contribution to RPPM's accuracy.\n");

    Report {
        name: "ablation",
        text: out,
        json: obj([("scale", Value::F64(scale)), ("variants", arr(rows))]),
    }
}

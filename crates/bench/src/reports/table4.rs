//! Table IV: the five simulated architecture configurations (equal peak
//! throughput of 10 G ops/s).

use super::{arr, obj, Report};
use crate::runner::Row;
use rppm_trace::DesignPoint;
use serde_json::Value;

/// Renders Table IV.
pub fn table4() -> Report {
    let configs: Vec<_> = DesignPoint::ALL.iter().map(|d| d.config()).collect();
    let mut out = String::new();
    out.push_str("Table IV: simulated architecture configurations\n\n");
    let mut header = Row::new().cell(22, "");
    for c in &configs {
        header = header.rcell(9, &c.name);
    }
    header.line(&mut out);
    out.push_str(&"-".repeat(22 + 11 * configs.len()));
    out.push('\n');

    let row = |label: &str, f: &dyn Fn(&rppm_trace::MachineConfig) -> String| {
        let mut r = Row::new().cell(22, label);
        for c in &configs {
            r = r.rcell(9, f(c));
        }
        r.render() + "\n"
    };
    out.push_str(&row("frequency [GHz]", &|c| format!("{:.2}", c.freq_ghz)));
    out.push_str(&row("dispatch width", &|c| c.dispatch_width.to_string()));
    out.push_str(&row("ROB size", &|c| c.rob_size.to_string()));
    out.push_str(&row("issue queue size", &|c| c.issue_queue.to_string()));
    out.push_str(&row("peak Gops/s", &|c| {
        format!("{:.1}", c.peak_ops_per_second() / 1e9)
    }));
    out.push_str(&row("mem latency [cyc]", &|c| {
        format!("{:.0}", c.mem_latency_cycles())
    }));
    out.push('\n');
    let base = &configs[2];
    out.push_str(&format!(
        "branch predictor   {} B tournament\n",
        base.bpred.size_bytes
    ));
    out.push_str(&format!(
        "L1-I               {} KB, {}-way, private\n",
        base.l1i.size_bytes / 1024,
        base.l1i.assoc
    ));
    out.push_str(&format!(
        "L1-D               {} KB, {}-way, private\n",
        base.l1d.size_bytes / 1024,
        base.l1d.assoc
    ));
    out.push_str(&format!(
        "L2                 {} KB, {}-way, private\n",
        base.l2.size_bytes / 1024,
        base.l2.assoc
    ));
    out.push_str(&format!(
        "LLC                {} MB, {}-way, shared\n",
        base.l3.size_bytes / 1024 / 1024,
        base.l3.assoc
    ));

    let rows = configs
        .iter()
        .map(|c| {
            obj([
                ("name", Value::String(c.name.clone())),
                ("freq_ghz", Value::F64(c.freq_ghz)),
                ("dispatch_width", Value::U64(c.dispatch_width as u64)),
                ("rob_size", Value::U64(c.rob_size as u64)),
                ("issue_queue", Value::U64(c.issue_queue as u64)),
                ("peak_gops", Value::F64(c.peak_ops_per_second() / 1e9)),
                ("mem_latency_cycles", Value::F64(c.mem_latency_cycles())),
            ])
        })
        .collect::<Vec<_>>();

    Report {
        name: "table4",
        text: out,
        json: obj([("configs", arr(rows))]),
    }
}

//! Figure 6: bottlegraphs for the Parsec analogs — RPPM's predicted
//! parallelism/criticality per thread versus simulation.
//!
//! Each thread is a box: height = share of execution time, width = average
//! parallelism while active. ASCII rendering, widest box at the bottom.

use super::{arr, obj, Report, RunCtx};
use crate::runner::ExperimentPlan;
use rppm_core::Bottlegraph;
use rppm_workloads::{Params, PARSEC};
use serde_json::Value;

fn render(g: &Bottlegraph, label: &str, out: &mut String) {
    out.push_str(&format!("  {label}:\n"));
    // Stack top-down: tallest (least parallel) first, like the paper's plot.
    for b in g.boxes.iter().rev() {
        if b.height < 0.005 {
            continue;
        }
        let width = (b.parallelism * 8.0).round() as usize;
        out.push_str(&format!(
            "    T{} {:>5.1}% |{}| parallelism {:.2}\n",
            b.thread,
            b.height * 100.0,
            "#".repeat(width.max(1)),
            b.parallelism
        ));
    }
}

fn graph_json(g: &Bottlegraph) -> Value {
    arr(g.boxes.iter().map(|b| {
        obj([
            ("thread", Value::U64(b.thread as u64)),
            ("height", Value::F64(b.height)),
            ("parallelism", Value::F64(b.parallelism)),
        ])
    }))
}

/// Renders Figure 6 at the given work scale.
pub fn fig6(scale: f64, ctx: &RunCtx<'_>) -> Report {
    let params = Params {
        scale,
        ..Params::full()
    };
    let runs = ExperimentPlan::single_config(ctx.specs(PARSEC), params, ctx.base.clone())
        .run(ctx.cache, ctx.jobs);

    let mut out = String::new();
    out.push_str(&format!(
        "Figure 6: bottlegraphs, RPPM (left/top) vs simulation (right/bottom), scale {scale}\n"
    ));
    let mut rows = Vec::new();
    for run in &runs {
        let cell = run.only();
        out.push_str(&format!("\n{}\n", run.spec.name()));
        let pred = Bottlegraph::from_intervals(&cell.rppm.intervals, cell.rppm.total_cycles);
        let sim = Bottlegraph::from_intervals(&cell.sim.intervals, cell.sim.total_cycles);
        render(&pred, "RPPM", &mut out);
        render(&sim, "simulation", &mut out);
        rows.push(obj([
            ("benchmark", Value::String(run.spec.name().to_string())),
            ("rppm", graph_json(&pred)),
            ("simulation", graph_json(&sim)),
        ]));
    }
    out.push('\n');
    out.push_str("Paper categories: balanced idle-main (blackscholes, canneal, fluidanimate,\n");
    out.push_str("raytrace, swaptions); working main (facesim, freqmine, bodytrack);\n");
    out.push_str("imbalanced (streamcluster, vips).\n");

    Report {
        name: "fig6",
        text: out,
        json: obj([("scale", Value::F64(scale)), ("benchmarks", arr(rows))]),
    }
}

//! One function per table/figure of the paper.
//!
//! Each report renders the same text `rppm report <name>` prints *and* a
//! machine-readable [`serde_json::Value`] twin, so `rppm run-all` can emit
//! `results/<name>.txt` and `results/<name>.json` side by side without
//! spawning child processes. Reports that run workloads take a [`RunCtx`]:
//! the shared [`ProfileCache`] guarantees each (workload, params) pair is
//! profiled exactly once per invocation even across reports, and `jobs`
//! sets the worker-thread fan-out.

mod ablation;
mod dse;
mod fig4;
mod fig5;
mod fig6;
mod sim_profile;
mod table1;
mod table2;
mod table3;
mod table4;
mod table5;

pub use ablation::ablation;
pub use dse::dse;
pub use fig4::fig4;
pub use fig5::fig5;
pub use fig6::fig6;
pub use sim_profile::sim_profile;
pub use table1::table1;
pub use table2::table2;
pub use table3::table3;
pub use table4::table4;
pub use table5::table5;

use crate::runner::{ImportedTrace, ProfileCache, WorkloadSpec};
use rppm_trace::{DesignPoint, MachineConfig};
use rppm_workloads::Benchmark;
use serde_json::Value;

/// Shared execution context for workload-running reports.
#[derive(Debug)]
pub struct RunCtx<'a> {
    /// Profile store shared across reports: each workload is profiled once
    /// per cache lifetime, not once per report.
    pub cache: &'a ProfileCache,
    /// Worker threads for the experiment fan-out.
    pub jobs: usize,
    /// Imported trace files, appended to every workload-running report's
    /// plan so they appear alongside the built-in benchmarks.
    pub imports: Vec<ImportedTrace>,
    /// The machine configuration single-config reports evaluate (and the
    /// base the `dse` report's space is built around). Defaults to the
    /// paper's base design point; `rppm report --machine FILE` swaps in a
    /// parsed `.machine` description. Reports that are *about* the five
    /// Table IV points (table4, table5) ignore it.
    pub base: MachineConfig,
}

impl<'a> RunCtx<'a> {
    /// Creates a context over `cache` with `jobs` worker threads.
    pub fn new(cache: &'a ProfileCache, jobs: usize) -> Self {
        RunCtx {
            cache,
            jobs,
            imports: Vec::new(),
            base: DesignPoint::Base.config(),
        }
    }

    /// Adds imported traces to the context.
    pub fn with_imports(mut self, imports: Vec<ImportedTrace>) -> Self {
        self.imports = imports;
        self
    }

    /// Sets the machine configuration single-config reports evaluate.
    pub fn with_base(mut self, base: MachineConfig) -> Self {
        self.base = base;
        self
    }

    /// The workload list a report should run: `base` benchmarks from the
    /// catalog followed by every imported trace.
    pub fn specs(&self, base: impl IntoIterator<Item = Benchmark>) -> Vec<WorkloadSpec> {
        base.into_iter()
            .map(WorkloadSpec::from)
            .chain(self.imports.iter().cloned().map(WorkloadSpec::from))
            .collect()
    }
}

/// A rendered report: the text table plus its machine-readable twin.
#[derive(Debug)]
pub struct Report {
    /// Report name (`table1` … `fig6`, `ablation`) — the `results/` stem.
    pub name: &'static str,
    /// The text rendering (what the standalone binary prints).
    pub text: String,
    /// Machine-readable content, written to `results/<name>.json`.
    pub json: Value,
}

impl Report {
    /// Writes `results/<name>.txt` and `results/<name>.json` under `dir`.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from writing either file.
    pub fn write_into(&self, dir: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(dir.join(format!("{}.txt", self.name)), &self.text)?;
        let json = serde_json::to_string(&self.json).expect("report JSON serializes");
        std::fs::write(dir.join(format!("{}.json", self.name)), json)
    }
}

/// Builds a JSON object from `(key, value)` pairs.
pub(crate) fn obj<const N: usize>(entries: [(&str, Value); N]) -> Value {
    Value::Object(
        entries
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

/// Builds a JSON array.
pub(crate) fn arr(items: impl IntoIterator<Item = Value>) -> Value {
    Value::Array(items.into_iter().collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn obj_and_arr_build_json() {
        let v = obj([
            ("a", Value::U64(1)),
            ("b", arr([Value::F64(0.5), Value::Null])),
        ]);
        assert_eq!(
            serde_json::to_string(&v).unwrap(),
            r#"{"a":1,"b":[0.5,null]}"#
        );
    }

    #[test]
    fn report_writes_both_files() {
        let dir = std::env::temp_dir().join("rppm-report-test");
        std::fs::create_dir_all(&dir).unwrap();
        let r = Report {
            name: "table1",
            text: "hello\n".into(),
            json: Value::U64(7),
        };
        r.write_into(&dir).unwrap();
        assert_eq!(
            std::fs::read_to_string(dir.join("table1.txt")).unwrap(),
            "hello\n"
        );
        assert_eq!(
            std::fs::read_to_string(dir.join("table1.json")).unwrap(),
            "7"
        );
    }
}

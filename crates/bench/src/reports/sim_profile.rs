//! The `sim_profile` report: the simulator's own execution profile.
//!
//! Runs every catalog workload through the probed golden simulator at the
//! paper's base design point and aggregates the engine's self-profile: op
//! frequencies, the dynamic op-pair histogram (the superinstruction
//! candidates), the synchronization mix and the dispatch/fusion statistics
//! the PGO loop feeds on. The JSON twin is drift-gated by the golden suite:
//! a change in the committed op-frequency profile means the simulated
//! instruction streams changed — exactly the regression the bit-identical
//! optimization discipline forbids.

use super::{arr, obj, Report, RunCtx};
use rppm_sim::{simulate_profiled, SimProfile};
use rppm_workloads::Params;
use serde_json::Value;

/// Number of op pairs listed in the text rendering.
const TOP_PAIRS: usize = 8;

/// Parses a [`SimProfile`]'s deterministic JSON into a [`Value`] for the
/// machine-readable twin.
pub(crate) fn profile_json(p: &SimProfile) -> Value {
    serde_json::from_str(&p.to_json_string()).expect("SimProfile JSON parses")
}

/// Renders the simulator self-profile report at the given work scale.
pub fn sim_profile(scale: f64, ctx: &RunCtx<'_>) -> Report {
    let params = Params {
        scale,
        ..Params::full()
    };
    let config = ctx.base.clone();

    let mut merged = SimProfile::default();
    let mut rows = Vec::new();
    let mut rows_json = Vec::new();
    for bench in rppm_workloads::all() {
        let program = bench.build(&params);
        let (_, p) = simulate_profiled(&program, &config);
        rows.push(format!(
            "{:<16} {:>10} {:>10} {:>7.1}% {:>8.1}%",
            bench.name,
            p.total_ops(),
            p.dispatches,
            p.fused_fraction() * 100.0,
            p.dispatch_reduction() * 100.0
        ));
        rows_json.push(obj([
            ("name", Value::String(bench.name.to_string())),
            ("ops", Value::U64(p.total_ops())),
            ("dispatches", Value::U64(p.dispatches)),
            ("fused_pairs", Value::U64(p.fused_pairs)),
        ]));
        merged.merge(&p);
    }
    let _ = ctx; // profile runs need no app profile; ctx keeps the report signature uniform

    let mut out = String::new();
    out.push_str(&format!(
        "Simulator self-profile: {} catalog workloads, base design point (scale {scale})\n\n",
        rows.len()
    ));
    out.push_str(&format!(
        "{:<16} {:>10} {:>10} {:>8} {:>9}\n",
        "workload", "ops", "dispatch", "fused", "disp.red"
    ));
    out.push_str(&"-".repeat(58));
    out.push('\n');
    for r in &rows {
        out.push_str(r);
        out.push('\n');
    }
    out.push('\n');

    let total = merged.total_ops().max(1);
    out.push_str("catalog-wide op mix:\n");
    for (k, class) in rppm_trace::OpClass::ALL.iter().enumerate() {
        let n = merged.op_freq[k];
        if n > 0 {
            out.push_str(&format!(
                "  {:<8} {:>6.2}%  {n}\n",
                class.to_string(),
                n as f64 * 100.0 / total as f64
            ));
        }
    }
    out.push_str(&format!("\ntop {TOP_PAIRS} dynamic op pairs:\n"));
    for (a, b, n) in merged.top_pairs(TOP_PAIRS) {
        out.push_str(&format!(
            "  {a:<8}-> {b:<8} {n:>10}  ({:.2}%)\n",
            n as f64 * 100.0 / total as f64
        ));
    }
    out.push_str(&format!(
        "\ndispatch actions: {} for {} ops ({} fused pairs, {:.2}% dispatch reduction)\n",
        merged.dispatches,
        merged.total_ops(),
        merged.fused_pairs,
        merged.dispatch_reduction() * 100.0
    ));
    let s = &merged.sync;
    out.push_str(&format!(
        "sync mix: {} creates, {} joins, {} barriers ({} via cond), {} lock/unlock, {} produce/consume\n",
        s.creates,
        s.joins,
        s.barriers + s.cond_barriers,
        s.cond_barriers,
        s.locks + s.unlocks,
        s.produces + s.consumes
    ));

    Report {
        name: "sim_profile",
        text: out,
        json: obj([
            ("scale", Value::F64(scale)),
            ("point", Value::String("base".to_string())),
            ("workloads", arr(rows_json)),
            ("merged", profile_json(&merged)),
        ]),
    }
}

//! Table V: design-space exploration. For each Rodinia analog, RPPM
//! predicts all five Table IV design points from one profile; design points
//! within a bound of the predicted optimum are candidates; the chosen
//! design's slowdown versus the true (simulated) optimum is the deficiency.

use super::{arr, obj, Report, RunCtx};
use crate::runner::{ExperimentPlan, Row};
use rppm_core::dse_row;
use rppm_trace::DesignPoint;
use rppm_workloads::{Params, RODINIA};
use serde_json::Value;

const BOUNDS: [f64; 4] = [0.0, 0.01, 0.03, 0.05];

/// Renders Table V at the given work scale.
pub fn table5(scale: f64, ctx: &RunCtx<'_>) -> Report {
    let params = Params {
        scale,
        ..Params::full()
    };
    let configs: Vec<_> = DesignPoint::ALL.iter().map(|d| d.config()).collect();
    let runs = ExperimentPlan::cross(ctx.specs(RODINIA), params, configs).run(ctx.cache, ctx.jobs);

    let mut out = String::new();
    out.push_str(&format!(
        "Table V: predicting the optimum design point (bounds 0/1/3/5%, scale {scale})\n\n"
    ));
    let mut header = Row::new().cell(16, "benchmark");
    for b in BOUNDS {
        header = header.rcell(12, format!("<{:.0}%", b * 100.0));
    }
    header.line(&mut out);
    out.push_str(&"-".repeat(16 + 14 * BOUNDS.len()));
    out.push('\n');

    let mut sums = vec![0.0; BOUNDS.len()];
    let mut rows = Vec::new();
    for run in &runs {
        // One profile, five predictions; five simulations as ground truth.
        let predicted: Vec<f64> = run.cells.iter().map(|c| c.rppm.total_seconds).collect();
        let simulated: Vec<f64> = run.cells.iter().map(|c| c.sim.total_seconds).collect();
        let row = dse_row(run.spec.name(), &predicted, &simulated, &BOUNDS)
            .expect("one prediction and one simulation per Table IV design point");
        let mut r = Row::new().cell(16, run.spec.name());
        let mut cells_json = Vec::new();
        for (k, &(_, deficiency, candidates)) in row.cells.iter().enumerate() {
            sums[k] += deficiency;
            r = r.rcell(12, format!("{:.2}% {}", deficiency * 100.0, candidates));
            cells_json.push(obj([
                ("bound", Value::F64(BOUNDS[k])),
                ("deficiency", Value::F64(deficiency)),
                ("candidates", Value::U64(candidates as u64)),
            ]));
        }
        r.line(&mut out);
        rows.push(obj([
            ("benchmark", Value::String(run.spec.name().to_string())),
            ("cells", arr(cells_json)),
        ]));
    }
    out.push_str(&"-".repeat(16 + 14 * BOUNDS.len()));
    out.push('\n');
    let mut r = Row::new().cell(16, "average");
    let mut avg_json = Vec::new();
    for s in &sums {
        let avg = s / runs.len() as f64;
        r = r.rcell(12, format!("{:.2}%", avg * 100.0));
        avg_json.push(Value::F64(avg));
    }
    r.line(&mut out);
    out.push('\n');
    out.push_str("Cells: deficiency vs. true optimum, and number of candidate designs.\n");
    out.push_str("Paper: average deficiency 1.95% at 0% bound, 0.76% at 1%, 0.12% at 5%.\n");

    Report {
        name: "table5",
        text: out,
        json: obj([
            ("scale", Value::F64(scale)),
            ("bounds", arr(BOUNDS.map(Value::F64))),
            ("benchmarks", arr(rows)),
            ("average_deficiency", arr(avg_json)),
        ]),
    }
}

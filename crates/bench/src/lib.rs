//! Experiment harness support code for the RPPM reproduction.
//!
//! The binaries in this crate regenerate every table and figure of the
//! paper (see DESIGN.md §5 for the index); this library holds the shared
//! run/report plumbing they use.

#![warn(missing_docs)]

pub mod runner;

pub use runner::{run_benchmark, BenchmarkRun, Row};

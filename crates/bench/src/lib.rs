//! Experiment harness support code for the RPPM reproduction.
//!
//! The `rppm` CLI (`crates/cli`) drives this library to regenerate every
//! table and figure of the paper (see DESIGN.md §5 for the index). This
//! library holds:
//!
//! * [`runner`] — the experiment engine: [`ExperimentPlan`] fans
//!   (workload × config) cells out over a thread pool while each workload
//!   is profiled exactly once through the shared [`ProfileCache`] (the
//!   cache itself is `rppm_profiler::ProfileCache`, promoted out of this
//!   crate and shared with the `rppm::Session` facade);
//! * [`reports`] — one function per table/figure, each returning the
//!   rendered text and a machine-readable JSON value, used by both
//!   `rppm report <name>` and the in-process `rppm run-all` driver;
//! * [`golden`] — the accuracy-regression harness diffing freshly
//!   generated report JSON against the committed `results/golden/*.json`
//!   baselines (`rppm golden diff`).

#![warn(missing_docs)]

pub mod golden;
pub mod reports;
pub mod runner;

pub use reports::{Report, RunCtx};
pub use runner::{
    default_jobs, parallel_for, profiled, CellRun, ExperimentPlan, ImportedTrace, ProfileCache,
    ProfileKey, ProfiledWorkload, Row, WorkloadRuns, WorkloadSpec,
};

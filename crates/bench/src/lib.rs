//! Experiment harness support code for the RPPM reproduction.
//!
//! The binaries in this crate regenerate every table and figure of the
//! paper (see DESIGN.md §5 for the index). This library holds:
//!
//! * [`runner`] — the profile-once experiment engine: [`ExperimentPlan`]
//!   fans (workload × config) cells out over a thread pool while each
//!   workload is profiled exactly once through the shared [`ProfileCache`];
//! * [`reports`] — one function per table/figure, each returning the
//!   rendered text and a machine-readable JSON value, used by both the
//!   thin per-report binaries and the in-process `run_all` driver;
//! * [`golden`] — the accuracy-regression harness diffing freshly
//!   generated report JSON against the committed `results/golden/*.json`
//!   baselines.

#![warn(missing_docs)]

pub mod golden;
pub mod reports;
pub mod runner;

pub use reports::{Report, RunCtx};
pub use runner::{
    default_jobs, parallel_for, CellRun, ExperimentPlan, ImportedTrace, ProfileCache,
    ProfiledWorkload, Row, WorkloadRuns, WorkloadSpec,
};

//! Golden accuracy-regression machinery.
//!
//! Every report emits a machine-readable JSON twin; this module pins a
//! subset of them against committed baselines (`results/golden/*.json`) so
//! accuracy changes show up as reviewable per-cell deltas instead of
//! silent drift. The golden set is generated at a tiny fixed scale
//! ([`GOLDEN_SCALE`]) — report generation is deterministic and
//! thread-count-independent, so fresh runs reproduce the baselines exactly
//! unless the model, profiler, simulator or workloads changed behaviour.
//!
//! Regenerate baselines (after an intentional accuracy change) with:
//!
//! ```text
//! cargo run --release -p rppm-cli -- golden update
//! ```

use crate::reports::{self, Report, RunCtx};
use serde_json::Value;

/// Work scale the golden baselines are generated at (tiny, so the full
/// golden set regenerates in seconds — fast enough for a test and for CI).
pub const GOLDEN_SCALE: f64 = 0.02;

/// Relative tolerance for numeric cells. Generation is deterministic, so
/// any genuine model change lands far above this; the slack only absorbs
/// platform-level floating-point noise (libm differences and the like).
pub const GOLDEN_RTOL: f64 = 1e-6;

/// The reports pinned by the golden suite: per-benchmark prediction errors
/// (fig4), sync-event counts (table3), design-space deficiencies (table5),
/// the batched DSE engine's optimum + Pareto-frontier membership (dse),
/// and the simulator's own op-frequency profile (sim_profile) — the latter
/// pins the exact simulated instruction streams, so any "optimization"
/// that changes the op sequences fails the diff.
pub fn golden_reports(ctx: &RunCtx<'_>) -> Vec<Report> {
    vec![
        reports::fig4(GOLDEN_SCALE, ctx),
        reports::table3(GOLDEN_SCALE, ctx),
        reports::table5(GOLDEN_SCALE, ctx),
        reports::dse(GOLDEN_SCALE, ctx),
        reports::sim_profile(GOLDEN_SCALE, ctx),
    ]
}

/// One divergence between a golden baseline and a fresh run.
#[derive(Debug, Clone, PartialEq)]
pub struct Delta {
    /// JSON path of the divergent cell (e.g. `benchmarks[3].rppm_error`).
    pub path: String,
    /// The committed value (rendered).
    pub golden: String,
    /// The freshly generated value (rendered).
    pub fresh: String,
}

impl std::fmt::Display for Delta {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: golden {} -> fresh {}",
            self.path, self.golden, self.fresh
        )
    }
}

fn render(v: &Value) -> String {
    serde_json::to_string(v).unwrap_or_else(|_| "<unserializable>".to_string())
}

/// Structurally diffs `fresh` against `golden`, treating numbers within
/// `rtol` relative tolerance as equal. Returns every divergent cell with
/// its JSON path — an empty result means the run matches the baseline.
pub fn diff(golden: &Value, fresh: &Value, rtol: f64) -> Vec<Delta> {
    let mut out = Vec::new();
    walk("$", golden, fresh, rtol, &mut out);
    out
}

fn push(path: &str, golden: &Value, fresh: &Value, out: &mut Vec<Delta>) {
    out.push(Delta {
        path: path.to_string(),
        golden: render(golden),
        fresh: render(fresh),
    });
}

fn walk(path: &str, golden: &Value, fresh: &Value, rtol: f64, out: &mut Vec<Delta>) {
    // Numbers compare numerically whatever their JSON representation. A
    // non-finite cell (NaN/inf — a divide-by-zero class of regression)
    // never tolerance-matches a differing value: NaN comparisons are all
    // false, so the tolerance path would wave it through.
    if let (Some(a), Some(b)) = (golden.as_f64(), fresh.as_f64()) {
        if !a.is_finite() || !b.is_finite() {
            if a.to_bits() != b.to_bits() {
                push(path, golden, fresh, out);
            }
            return;
        }
        let denom = a.abs().max(b.abs());
        if denom > 0.0 && ((a - b).abs() / denom) > rtol {
            push(path, golden, fresh, out);
        }
        return;
    }
    match (golden, fresh) {
        (Value::Array(g), Value::Array(f)) => {
            if g.len() != f.len() {
                out.push(Delta {
                    path: path.to_string(),
                    golden: format!("{} elements", g.len()),
                    fresh: format!("{} elements", f.len()),
                });
                return;
            }
            for (i, (gv, fv)) in g.iter().zip(f).enumerate() {
                walk(&format!("{path}[{i}]"), gv, fv, rtol, out);
            }
        }
        (Value::Object(g), Value::Object(f)) => {
            for (k, gv) in g {
                match Value::get(f, k) {
                    Some(fv) => walk(&format!("{path}.{k}"), gv, fv, rtol, out),
                    None => out.push(Delta {
                        path: format!("{path}.{k}"),
                        golden: render(gv),
                        fresh: "<missing>".to_string(),
                    }),
                }
            }
            for (k, fv) in f {
                if Value::get(g, k).is_none() {
                    out.push(Delta {
                        path: format!("{path}.{k}"),
                        golden: "<missing>".to_string(),
                        fresh: render(fv),
                    });
                }
            }
        }
        _ if golden == fresh => {}
        _ => push(path, golden, fresh, out),
    }
}

/// Renders one report's delta list as a human-readable block.
pub fn render_deltas(report: &str, deltas: &[Delta]) -> String {
    let mut out = String::new();
    if deltas.is_empty() {
        out.push_str(&format!("{report}: OK (matches golden baseline)\n"));
    } else {
        out.push_str(&format!(
            "{report}: {} cell(s) drifted from the golden baseline:\n",
            deltas.len()
        ));
        for d in deltas {
            out.push_str(&format!("  {d}\n"));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn num_obj(v: f64) -> Value {
        Value::Object(vec![
            ("name".to_string(), Value::String("x".to_string())),
            ("err".to_string(), Value::F64(v)),
        ])
    }

    #[test]
    fn identical_values_produce_no_deltas() {
        let v = Value::Array(vec![num_obj(0.112), num_obj(0.023)]);
        assert!(diff(&v, &v.clone(), GOLDEN_RTOL).is_empty());
    }

    #[test]
    fn perturbed_number_is_flagged_with_path() {
        let golden = Value::Array(vec![num_obj(0.112), num_obj(0.023)]);
        let fresh = Value::Array(vec![num_obj(0.112), num_obj(0.024)]);
        let deltas = diff(&golden, &fresh, GOLDEN_RTOL);
        assert_eq!(deltas.len(), 1);
        assert_eq!(deltas[0].path, "$[1].err");
    }

    #[test]
    fn within_tolerance_is_equal() {
        let golden = num_obj(1.0);
        let fresh = num_obj(1.0 + 1e-9);
        assert!(diff(&golden, &fresh, GOLDEN_RTOL).is_empty());
        assert_eq!(diff(&golden, &fresh, 1e-12).len(), 1);
    }

    #[test]
    fn integer_representations_compare_numerically() {
        // 7 as U64 vs 7.0 as F64 must not be a false positive.
        assert!(diff(&Value::U64(7), &Value::F64(7.0), GOLDEN_RTOL).is_empty());
        assert_eq!(diff(&Value::U64(7), &Value::U64(8), GOLDEN_RTOL).len(), 1);
    }

    #[test]
    fn non_finite_fresh_values_are_flagged() {
        // The worst accuracy regression — a prediction going NaN/inf —
        // must never tolerance-match a finite baseline.
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let deltas = diff(&num_obj(0.112), &num_obj(bad), GOLDEN_RTOL);
            assert_eq!(deltas.len(), 1, "{bad} slipped through");
            assert_eq!(deltas[0].path, "$.err");
        }
        // Identical non-finite values (bitwise) are not drift.
        assert!(diff(&num_obj(f64::NAN), &num_obj(f64::NAN), GOLDEN_RTOL).is_empty());
    }

    #[test]
    fn shape_changes_are_flagged() {
        let golden = Value::Object(vec![("a".to_string(), Value::U64(1))]);
        let fresh = Value::Object(vec![
            ("a".to_string(), Value::U64(1)),
            ("b".to_string(), Value::U64(2)),
        ]);
        let deltas = diff(&golden, &fresh, GOLDEN_RTOL);
        assert_eq!(deltas.len(), 1);
        assert_eq!(deltas[0].path, "$.b");
        assert_eq!(deltas[0].golden, "<missing>");

        let short = Value::Array(vec![Value::U64(1)]);
        let long = Value::Array(vec![Value::U64(1), Value::U64(2)]);
        assert_eq!(diff(&short, &long, GOLDEN_RTOL).len(), 1);
    }

    #[test]
    fn string_changes_are_flagged() {
        let golden = Value::String("backprop".to_string());
        let fresh = Value::String("backdrop".to_string());
        assert_eq!(diff(&golden, &fresh, GOLDEN_RTOL).len(), 1);
    }

    #[test]
    fn render_deltas_reports_both_outcomes() {
        assert!(render_deltas("fig4", &[]).contains("OK"));
        let d = diff(&num_obj(1.0), &num_obj(2.0), GOLDEN_RTOL);
        let text = render_deltas("fig4", &d);
        assert!(text.contains("drifted"), "{text}");
        assert!(text.contains("$.err"), "{text}");
    }
}

//! Table V: design-space exploration. For each Rodinia analog, RPPM
//! predicts all five Table IV design points from one profile; design points
//! within a bound of the predicted optimum are candidates; the chosen
//! design's slowdown versus the true (simulated) optimum is the deficiency.
//!
//! ```text
//! cargo run --release -p rppm-bench --bin table5 [scale]
//! ```

use rppm_bench::Row;
use rppm_core::{dse_row, predict};
use rppm_profiler::profile;
use rppm_sim::simulate;
use rppm_trace::DesignPoint;
use rppm_workloads::{Params, RODINIA};

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.3);
    let params = Params {
        scale,
        ..Params::full()
    };
    let bounds = [0.0, 0.01, 0.03, 0.05];

    println!("Table V: predicting the optimum design point (bounds 0/1/3/5%, scale {scale})");
    println!();
    let mut header = Row::new().cell(16, "benchmark");
    for b in bounds {
        header = header.rcell(12, format!("<{:.0}%", b * 100.0));
    }
    header.print();
    println!("{}", "-".repeat(16 + 14 * bounds.len()));

    let mut sums = vec![0.0; bounds.len()];
    for bench in RODINIA {
        let program = bench.build(&params);
        let prof = profile(&program);
        // One profile, five predictions; five simulations as ground truth.
        let mut predicted = Vec::new();
        let mut simulated = Vec::new();
        for dp in DesignPoint::ALL {
            let cfg = dp.config();
            predicted.push(predict(&prof, &cfg).total_seconds);
            simulated.push(simulate(&program, &cfg).total_seconds);
        }
        let row = dse_row(bench.name, &predicted, &simulated, &bounds);
        let mut r = Row::new().cell(16, bench.name);
        for (k, &(_, deficiency, candidates)) in row.cells.iter().enumerate() {
            sums[k] += deficiency;
            r = r.rcell(12, format!("{:.2}% {}", deficiency * 100.0, candidates));
        }
        r.print();
    }
    println!("{}", "-".repeat(16 + 14 * bounds.len()));
    let mut r = Row::new().cell(16, "average");
    for s in &sums {
        r = r.rcell(12, format!("{:.2}%", s / RODINIA.len() as f64 * 100.0));
    }
    r.print();
    println!();
    println!("Cells: deficiency vs. true optimum, and number of candidate designs.");
    println!("Paper: average deficiency 1.95% at 0% bound, 0.76% at 1%, 0.12% at 5%.");
}

//! Ablation study: re-run the Figure 4 accuracy suite with each model
//! refinement (DESIGN.md §7) disabled in turn, quantifying what every
//! mechanism contributes to RPPM's accuracy.
//!
//! ```text
//! cargo run --release -p rppm-bench --bin ablation [scale]
//! ```
//!
//! Spawns itself as a subprocess per variant so the env-var knobs in
//! `rppm-core::eq1` stay process-wide constants.

use rppm_bench::{run_benchmark, Row};
use rppm_trace::DesignPoint;
use rppm_workloads::Params;

fn suite_error(scale: f64) -> (f64, f64) {
    let params = Params {
        scale,
        ..Params::full()
    };
    let config = DesignPoint::Base.config();
    let errs: Vec<f64> = rppm_workloads::all()
        .iter()
        .map(|b| run_benchmark(b, &params, &config).rppm_error())
        .collect();
    (rppm_core::mean(&errs), rppm_core::max(&errs))
}

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.2);

    // Child mode: compute one variant and print csv.
    if let Ok(_tag) = std::env::var("RPPM_ABLATION_CHILD") {
        let (mean, max) = suite_error(scale);
        println!("{mean},{max}");
        return;
    }

    let variants: &[(&str, &[(&str, &str)])] = &[
        ("full model", &[]),
        (
            "no path-selection factor (kappa=1)",
            &[("RPPM_KAPPA", "1.0")],
        ),
        (
            "no MLP efficiency (gamma=cap=1)",
            &[("RPPM_MLP_EFF", "1.0"), ("RPPM_MLP_CAP", "1.0")],
        ),
        ("no chain bound", &[("RPPM_NO_CHAIN_BOUND", "1")]),
        ("no retirement exposure", &[("RPPM_NO_EXPOSURE", "1")]),
    ];

    println!("Ablation: RPPM suite error (all 26 benchmarks, base config, scale {scale})");
    println!();
    Row::new()
        .cell(38, "variant")
        .rcell(10, "avg err")
        .rcell(10, "max err")
        .print();
    println!("{}", "-".repeat(60));
    let exe = std::env::current_exe().expect("own path");
    for (name, env) in variants {
        let mut cmd = std::process::Command::new(&exe);
        cmd.arg(scale.to_string()).env("RPPM_ABLATION_CHILD", "1");
        for (k, v) in *env {
            cmd.env(k, v);
        }
        let out = cmd.output().expect("child runs");
        assert!(out.status.success(), "variant '{name}' failed");
        let text = String::from_utf8_lossy(&out.stdout);
        let mut it = text.trim().split(',');
        let mean: f64 = it.next().unwrap().parse().unwrap();
        let max: f64 = it.next().unwrap().parse().unwrap();
        Row::new()
            .cell(38, *name)
            .rcell(10, format!("{:.1}%", mean * 100.0))
            .rcell(10, format!("{:.1}%", max * 100.0))
            .print();
    }
    println!();
    println!("Each row disables one DESIGN.md §7 refinement; deltas vs. the first row");
    println!("quantify that mechanism's contribution to RPPM's accuracy.");
}

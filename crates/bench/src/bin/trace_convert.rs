//! Converts trace files between the JSON interchange format and the `RPT1`
//! binary streaming container, in either direction.
//!
//! ```text
//! cargo run --release -p rppm-bench --bin trace_convert -- IN OUT [--to json|binary]
//! ```
//!
//! The input format is auto-detected by magic bytes (`RPT1` ⇒ binary,
//! anything else ⇒ JSON). The output format follows `--to` when given,
//! otherwise the output extension: `.rpt` / `.bin` write binary, everything
//! else writes JSON. Conversion is lossless both ways — the two containers
//! carry the identical program, profile and predictions (enforced by
//! property tests).
//!
//! Failures print the typed `rppm_trace::TraceFileError` diagnostic and
//! exit with status 2.

use std::path::Path;

fn fail(msg: impl std::fmt::Display) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}

#[derive(Clone, Copy, PartialEq)]
enum Format {
    Json,
    Binary,
}

impl Format {
    fn name(self) -> &'static str {
        match self {
            Format::Json => "json",
            Format::Binary => "binary",
        }
    }
}

fn sniff(path: &Path) -> Format {
    let mut magic = [0u8; 4];
    match std::fs::File::open(path).and_then(|mut f| std::io::Read::read(&mut f, &mut magic)) {
        Ok(4) if magic == rppm_trace::BINARY_TRACE_MAGIC => Format::Binary,
        _ => Format::Json,
    }
}

fn main() {
    let mut paths = Vec::new();
    let mut to: Option<Format> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--to" => {
                let v = args.next().unwrap_or_else(|| fail("--to needs a format"));
                to = Some(match v.as_str() {
                    "json" => Format::Json,
                    "binary" | "rpt" => Format::Binary,
                    other => fail(format!(
                        "unknown format `{other}` (expected json or binary)"
                    )),
                });
            }
            _ if a.starts_with("--") => fail(format!("unknown flag `{a}`")),
            _ => paths.push(a),
        }
    }
    let [input, output] = paths.as_slice() else {
        fail("usage: trace_convert IN OUT [--to json|binary]");
    };
    let input = Path::new(input);
    let output = Path::new(output);

    let in_format = sniff(input);
    let out_format = to.unwrap_or_else(|| {
        if rppm_trace::has_binary_extension(output) {
            Format::Binary
        } else {
            Format::Json
        }
    });

    let program = rppm_trace::read_program_any(input).unwrap_or_else(|e| fail(e));
    match out_format {
        Format::Json => rppm_trace::write_program(&program, output),
        Format::Binary => rppm_trace::write_program_binary(&program, output),
    }
    .unwrap_or_else(|e| fail(e));

    let in_bytes = std::fs::metadata(input).map(|m| m.len()).unwrap_or(0);
    let out_bytes = std::fs::metadata(output).map(|m| m.len()).unwrap_or(0);
    println!(
        "converted {} ({}, {} bytes) -> {} ({}, {} bytes): workload `{}`, {} threads, {} ops",
        input.display(),
        in_format.name(),
        in_bytes,
        output.display(),
        out_format.name(),
        out_bytes,
        program.name,
        program.num_threads(),
        program.total_ops(),
    );
}

//! Runs every table/figure report in-process and writes the outputs to
//! `results/` — the one-command reproduction of the paper's evaluation.
//!
//! ```text
//! cargo run --release -p rppm-bench --bin run_all [scale] [dse_scale] [--jobs N]
//!     [--import TRACE.json|TRACE.rpt]...
//! ```
//!
//! Reports share one [`rppm_bench::ProfileCache`], so each (workload,
//! params) pair is profiled exactly once per invocation no matter how many
//! reports use it (fig4 and fig5, for example, share all profiles), and
//! each report fans its (workload × config) cells out over `--jobs` worker
//! threads. Every report writes both a text table (`results/<name>.txt`)
//! and its machine-readable twin (`results/<name>.json`).
//!
//! Each `--import` names a trace file — JSON interchange or `RPT1` binary,
//! auto-detected by magic bytes (see `rppm_trace::file` and
//! `rppm_trace::binary`); imported workloads join every workload-running
//! report as first-class rows, also profiled exactly once across all
//! reports.

use rppm_bench::reports::{self, Report};
use rppm_bench::{ImportedTrace, ProfileCache, RunCtx};

/// A named, deferred report job.
type ReportJob<'a> = (&'a str, Box<dyn FnOnce() -> Report + 'a>);

fn main() {
    let mut positional = Vec::new();
    let mut jobs = rppm_bench::default_jobs();
    let mut imports = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--jobs" || a == "-j" {
            let v = args.next().expect("--jobs needs a value");
            jobs = v.parse().expect("--jobs needs an integer");
        } else if let Some(v) = a.strip_prefix("--jobs=") {
            jobs = v.parse().expect("--jobs needs an integer");
        } else if a == "--import" || a.starts_with("--import=") {
            let path = a
                .strip_prefix("--import=")
                .map(str::to_string)
                .unwrap_or_else(|| args.next().expect("--import needs a file path"));
            match ImportedTrace::from_file(&path) {
                Ok(t) => {
                    eprintln!("imported {path} as workload `{}`", t.name());
                    imports.push(t);
                }
                Err(e) => {
                    eprintln!("error: {e}");
                    std::process::exit(2);
                }
            }
        } else if a.starts_with("--") {
            eprintln!("error: unknown flag `{a}`");
            std::process::exit(2);
        } else {
            positional.push(a);
        }
    }
    let scale: f64 = positional
        .first()
        .map(|s| s.parse().expect("scale must be a number"))
        .unwrap_or(0.5);
    let dse_scale: f64 = positional
        .get(1)
        .map(|s| s.parse().expect("dse_scale must be a number"))
        .unwrap_or(0.3);

    let dir = std::path::Path::new("results");
    std::fs::create_dir_all(dir).expect("create results dir");

    let cache = ProfileCache::new();
    let ctx = RunCtx::new(&cache, jobs).with_imports(imports);
    let t0 = std::time::Instant::now();
    let profiles_before = rppm_profiler::profile_call_count();

    let jobs_list: Vec<ReportJob<'_>> = vec![
        ("table1", Box::new(|| reports::table1(1_000_000))),
        ("table2", Box::new(|| reports::table2(1.0))),
        ("table3", Box::new(|| reports::table3(1.0, &ctx))),
        ("table4", Box::new(reports::table4)),
        ("fig4", Box::new(|| reports::fig4(scale, &ctx))),
        ("fig5", Box::new(|| reports::fig5(scale, None, &ctx))),
        ("table5", Box::new(|| reports::table5(dse_scale, &ctx))),
        ("fig6", Box::new(|| reports::fig6(dse_scale, &ctx))),
        ("ablation", Box::new(|| reports::ablation(dse_scale, &ctx))),
    ];
    for (name, job) in jobs_list {
        eprintln!("running {name} ({jobs} jobs)...");
        let report = job();
        assert_eq!(report.name, name, "report name matches job list");
        report.write_into(dir).expect("write report outputs");
        eprintln!("  -> results/{name}.txt + results/{name}.json");
    }

    eprintln!(
        "all experiments regenerated under results/ in {:.1?} \
         ({} workloads profiled once each, {} profile() calls)",
        t0.elapsed(),
        cache.len(),
        rppm_profiler::profile_call_count() - profiles_before,
    );
}

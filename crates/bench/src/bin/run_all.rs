//! Runs every table/figure harness in sequence and writes the outputs to
//! `results/` — the one-command reproduction of the paper's evaluation.
//!
//! ```text
//! cargo run --release -p rppm-bench --bin run_all [scale]
//! ```

use std::process::Command;

fn main() {
    let scale = std::env::args().nth(1).unwrap_or_else(|| "0.5".to_string());
    let dse_scale = std::env::args().nth(2).unwrap_or_else(|| "0.3".to_string());
    std::fs::create_dir_all("results").expect("create results dir");

    let jobs: &[(&str, &str)] = &[
        ("table1", ""),
        ("table2", "1.0"),
        ("table3", "1.0"),
        ("table4", ""),
        ("fig4", &scale),
        ("fig5", &scale),
        ("table5", &dse_scale),
        ("fig6", &dse_scale),
    ];
    for (bin, arg) in jobs {
        eprintln!("running {bin} {arg}...");
        let exe = std::env::current_exe().expect("own path");
        let dir = exe.parent().expect("bin dir");
        let mut cmd = Command::new(dir.join(bin));
        if !arg.is_empty() {
            cmd.arg(arg);
        }
        let out = cmd
            .output()
            .unwrap_or_else(|e| panic!("failed to spawn {bin}: {e}"));
        assert!(
            out.status.success(),
            "{bin} failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let path = format!("results/{bin}.txt");
        std::fs::write(&path, &out.stdout).expect("write output");
        eprintln!("  -> {path}");
    }
    eprintln!("all experiments regenerated under results/");
}

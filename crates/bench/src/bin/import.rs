//! Trace-file workbench: predict imported traces across every design
//! point, or export a catalog workload as a trace file.
//!
//! ```text
//! # Predict + simulate each trace file on all five Table IV design points
//! # (JSON or RPT1 binary, auto-detected by magic bytes):
//! cargo run --release -p rppm-bench --bin import -- TRACE.json|TRACE.rpt... [--jobs N]
//!
//! # Export a built-in workload as a trace file (a quick way to produce a
//! # schema-conformant example, or to freeze a generated workload; `.rpt`
//! # extensions write the binary container):
//! cargo run --release -p rppm-bench --bin import -- \
//!     --export NAME FILE [--scale S] [--seed N]
//! ```
//!
//! Import failures print the typed `rppm_trace::TraceFileError` diagnostic
//! and exit with status 2.

use rppm_bench::{ExperimentPlan, ImportedTrace, ProfileCache, Row};
use rppm_trace::DesignPoint;
use rppm_workloads::Params;

fn fail(msg: impl std::fmt::Display) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}

fn main() {
    let mut files = Vec::new();
    let mut jobs = rppm_bench::default_jobs();
    let mut export: Option<(String, String)> = None;
    let mut params = Params::full();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--jobs" | "-j" => {
                let v = args.next().unwrap_or_else(|| fail("--jobs needs a value"));
                jobs = v
                    .parse()
                    .unwrap_or_else(|_| fail("--jobs needs an integer"));
            }
            "--export" => {
                let name = args
                    .next()
                    .unwrap_or_else(|| fail("--export needs a workload name"));
                let file = args
                    .next()
                    .unwrap_or_else(|| fail("--export needs an output file"));
                export = Some((name, file));
            }
            "--scale" => {
                let v = args.next().unwrap_or_else(|| fail("--scale needs a value"));
                params.scale = v.parse().unwrap_or_else(|_| fail("--scale needs a number"));
            }
            "--seed" => {
                let v = args.next().unwrap_or_else(|| fail("--seed needs a value"));
                params.seed = v
                    .parse()
                    .unwrap_or_else(|_| fail("--seed needs an integer"));
            }
            _ => files.push(a),
        }
    }

    if let Some((name, file)) = export {
        if !files.is_empty() {
            fail(format!(
                "cannot mix --export with trace files to import ({})",
                files.join(", ")
            ));
        }
        let bench = rppm_workloads::by_name(&name)
            .unwrap_or_else(|| fail(format!("unknown workload `{name}` (see rppm-workloads)")));
        let program = bench.build(&params);
        if rppm_trace::has_binary_extension(&file) {
            rppm_trace::write_program_binary(&program, &file).unwrap_or_else(|e| fail(e));
        } else {
            rppm_trace::write_program(&program, &file).unwrap_or_else(|e| fail(e));
        }
        println!(
            "exported `{}` (scale {}, seed {}, {} ops, {} threads) to {file}",
            name,
            params.scale,
            params.seed,
            program.total_ops(),
            program.num_threads()
        );
        return;
    }

    if files.is_empty() {
        fail("nothing to do: pass trace files to import, or --export NAME FILE");
    }

    let traces: Vec<ImportedTrace> = files
        .iter()
        .map(|f| ImportedTrace::from_file(f).unwrap_or_else(|e| fail(e)))
        .collect();

    let configs: Vec<_> = DesignPoint::ALL.iter().map(|d| d.config()).collect();
    let cache = ProfileCache::new();
    let runs = ExperimentPlan::cross(traces, params, configs).run(&cache, jobs);

    for (run, file) in runs.iter().zip(&files) {
        let mut out = String::new();
        out.push_str(&format!(
            "{} (from {file}, {} threads, {} ops, profiled once)\n",
            run.spec.name(),
            run.workload.program.num_threads(),
            run.workload.program.total_ops(),
        ));
        Row::new()
            .cell(10, "design")
            .rcell(14, "sim cycles")
            .rcell(14, "RPPM cycles")
            .rcell(9, "error")
            .line(&mut out);
        out.push_str(&"-".repeat(51));
        out.push('\n');
        for (dp, cell) in DesignPoint::ALL.iter().zip(&run.cells) {
            Row::new()
                .cell(10, dp.to_string())
                .rcell(14, format!("{:.0}", cell.sim.total_cycles))
                .rcell(14, format!("{:.0}", cell.rppm.total_cycles))
                .rcell(9, format!("{:.1}%", cell.rppm_error() * 100.0))
                .line(&mut out);
        }
        println!("{out}");
    }
}

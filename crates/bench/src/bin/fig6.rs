//! Figure 6: bottlegraphs for the Parsec analogs — RPPM's predicted
//! parallelism/criticality per thread versus simulation.
//!
//! Each thread is a box: height = share of execution time, width = average
//! parallelism while active. ASCII rendering, widest box at the bottom.
//!
//! ```text
//! cargo run --release -p rppm-bench --bin fig6 [scale]
//! ```

use rppm_bench::run_benchmark;
use rppm_core::Bottlegraph;
use rppm_trace::DesignPoint;
use rppm_workloads::{Params, PARSEC};

fn render(g: &Bottlegraph, label: &str) {
    println!("  {label}:");
    // Stack top-down: tallest (least parallel) first, like the paper's plot.
    for b in g.boxes.iter().rev() {
        if b.height < 0.005 {
            continue;
        }
        let width = (b.parallelism * 8.0).round() as usize;
        println!(
            "    T{} {:>5.1}% |{}| parallelism {:.2}",
            b.thread,
            b.height * 100.0,
            "#".repeat(width.max(1)),
            b.parallelism
        );
    }
}

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.3);
    let params = Params {
        scale,
        ..Params::full()
    };
    let config = DesignPoint::Base.config();

    println!("Figure 6: bottlegraphs, RPPM (left/top) vs simulation (right/bottom), scale {scale}");
    for bench in PARSEC {
        let run = run_benchmark(&bench, &params, &config);
        println!("\n{}", bench.name);
        let pred = Bottlegraph::from_intervals(&run.rppm.intervals, run.rppm.total_cycles);
        let sim = Bottlegraph::from_intervals(&run.sim.intervals, run.sim.total_cycles);
        render(&pred, "RPPM");
        render(&sim, "simulation");
    }
    println!();
    println!("Paper categories: balanced idle-main (blackscholes, canneal, fluidanimate,");
    println!("raytrace, swaptions); working main (facesim, freqmine, bodytrack);");
    println!("imbalanced (streamcluster, vips).");
}

//! Figure 6 binary: see [`rppm_bench::reports::fig6`].
//!
//! ```text
//! cargo run --release -p rppm-bench --bin fig6 [scale]
//! ```

use rppm_bench::{ProfileCache, RunCtx};

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.3);
    let cache = ProfileCache::new();
    let ctx = RunCtx::new(&cache, rppm_bench::default_jobs());
    print!("{}", rppm_bench::reports::fig6(scale, &ctx).text);
}

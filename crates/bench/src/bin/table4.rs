//! Table IV binary: see [`rppm_bench::reports::table4`].
//!
//! ```text
//! cargo run --release -p rppm-bench --bin table4
//! ```

fn main() {
    print!("{}", rppm_bench::reports::table4().text);
}

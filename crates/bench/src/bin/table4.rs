//! Table IV: the five simulated architecture configurations (equal peak
//! throughput of 10 G ops/s).
//!
//! ```text
//! cargo run --release -p rppm-bench --bin table4
//! ```

use rppm_bench::Row;
use rppm_trace::DesignPoint;

fn main() {
    println!("Table IV: simulated architecture configurations");
    println!();
    let configs: Vec<_> = DesignPoint::ALL.iter().map(|d| d.config()).collect();
    let mut header = Row::new().cell(22, "");
    for c in &configs {
        header = header.rcell(9, &c.name);
    }
    header.print();
    println!("{}", "-".repeat(22 + 11 * configs.len()));

    let row = |label: &str, f: &dyn Fn(&rppm_trace::MachineConfig) -> String| {
        let mut r = Row::new().cell(22, label);
        for c in &configs {
            r = r.rcell(9, f(c));
        }
        r.print();
    };
    row("frequency [GHz]", &|c| format!("{:.2}", c.freq_ghz));
    row("dispatch width", &|c| c.dispatch_width.to_string());
    row("ROB size", &|c| c.rob_size.to_string());
    row("issue queue size", &|c| c.issue_queue.to_string());
    row("peak Gops/s", &|c| {
        format!("{:.1}", c.peak_ops_per_second() / 1e9)
    });
    row("mem latency [cyc]", &|c| {
        format!("{:.0}", c.mem_latency_cycles())
    });
    println!();
    let base = &configs[2];
    println!("branch predictor   {} B tournament", base.bpred.size_bytes);
    println!(
        "L1-I               {} KB, {}-way, private",
        base.l1i.size_bytes / 1024,
        base.l1i.assoc
    );
    println!(
        "L1-D               {} KB, {}-way, private",
        base.l1d.size_bytes / 1024,
        base.l1d.assoc
    );
    println!(
        "L2                 {} KB, {}-way, private",
        base.l2.size_bytes / 1024,
        base.l2.assoc
    );
    println!(
        "LLC                {} MB, {}-way, shared",
        base.l3.size_bytes / 1024 / 1024,
        base.l3.assoc
    );
}

//! CI performance-regression gate over the `speed` benchmark.
//!
//! ```text
//! CRITERION_JSON=results/bench_fresh.json cargo bench -p rppm-bench
//! cargo run --release -p rppm-bench --bin bench_guard -- results/bench_fresh.json
//! ```
//!
//! Compares a fresh `CRITERION_JSON` capture against the committed
//! [`BENCH_speed.json`](../../../../BENCH_speed.json) baseline. Absolute
//! nanoseconds are machine-dependent, so the gate checks **ratios between
//! benchmarks of the same run**: each entry of the baseline's `guards`
//! array names a numerator and denominator benchmark plus a generous
//! `max_regression` factor, and the guard fails when
//!
//! ```text
//! fresh(num)/fresh(den)  >  max_regression × baseline(num)/baseline(den)
//! ```
//!
//! where baseline values are the `after_mean_ns` fields. This catches the
//! regressions that matter (profiling drifting back toward simulation
//! cost, the trace cursor losing its zero-copy win) without flaking on CI
//! machine variance. Exits 1 on any failed guard, 2 on malformed input.

use serde_json::Value;

fn fail(msg: impl std::fmt::Display) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}

/// Mean ns of `name` in a fresh `CRITERION_JSON` capture.
fn fresh_mean(fresh: &[(String, Value)], name: &str) -> Option<f64> {
    Value::get(fresh, name)?
        .as_object()
        .and_then(|e| Value::get(e, "mean_ns"))
        .and_then(Value::as_f64)
}

/// Baseline (`after_mean_ns`) of `name` in BENCH_speed.json.
fn baseline_mean(benchmarks: &[(String, Value)], name: &str) -> Option<f64> {
    Value::get(benchmarks, name)?
        .as_object()
        .and_then(|e| Value::get(e, "after_mean_ns"))
        .and_then(Value::as_f64)
}

fn load_object(path: &str) -> Vec<(String, Value)> {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| fail(format!("cannot read `{path}`: {e}")));
    let value: Value = serde_json::from_str(&text)
        .unwrap_or_else(|e| fail(format!("`{path}` is not valid JSON: {e}")));
    value
        .as_object()
        .unwrap_or_else(|| fail(format!("`{path}` is not a JSON object")))
        .to_vec()
}

fn main() {
    let mut fresh_path: Option<String> = None;
    let mut baseline_path = "BENCH_speed.json".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--baseline" => {
                baseline_path = args
                    .next()
                    .unwrap_or_else(|| fail("--baseline needs a path"));
            }
            _ if a.starts_with("--") => fail(format!("unknown flag `{a}`")),
            _ if fresh_path.is_none() => fresh_path = Some(a),
            _ => fail("exactly one fresh CRITERION_JSON capture expected"),
        }
    }
    let fresh_path = fresh_path
        .unwrap_or_else(|| fail("usage: bench_guard FRESH.json [--baseline BENCH_speed.json]"));

    let fresh = load_object(&fresh_path);
    let baseline = load_object(&baseline_path);
    let benchmarks = Value::get(&baseline, "benchmarks")
        .and_then(Value::as_object)
        .unwrap_or_else(|| fail(format!("`{baseline_path}` has no `benchmarks` object")));
    let guards = Value::get(&baseline, "guards")
        .and_then(Value::as_array)
        .unwrap_or_else(|| fail(format!("`{baseline_path}` has no `guards` array")));

    let mut failures = 0;
    println!("perf-regression gate: {fresh_path} vs {baseline_path}");
    for guard in guards {
        let entries = guard
            .as_object()
            .unwrap_or_else(|| fail("guard entries must be objects"));
        let get_str = |k: &str| {
            Value::get(entries, k)
                .and_then(Value::as_str)
                .unwrap_or_else(|| fail(format!("guard missing string field `{k}`")))
        };
        let name = get_str("name");
        let num = get_str("num");
        let den = get_str("den");
        let max_regression = Value::get(entries, "max_regression")
            .and_then(Value::as_f64)
            .unwrap_or_else(|| fail(format!("guard `{name}` missing `max_regression`")));

        let base_ratio = match (
            baseline_mean(benchmarks, num),
            baseline_mean(benchmarks, den),
        ) {
            (Some(n), Some(d)) if d > 0.0 => n / d,
            _ => fail(format!(
                "guard `{name}`: baseline lacks after_mean_ns for `{num}` / `{den}`"
            )),
        };
        let (fresh_num, fresh_den) = match (fresh_mean(&fresh, num), fresh_mean(&fresh, den)) {
            (Some(n), Some(d)) if d > 0.0 => (n, d),
            _ => {
                println!("  FAIL {name}: fresh capture lacks `{num}` or `{den}` — was the bench run with CRITERION_JSON?");
                failures += 1;
                continue;
            }
        };
        let fresh_ratio = fresh_num / fresh_den;
        let limit = max_regression * base_ratio;
        let verdict = if fresh_ratio <= limit { "ok  " } else { "FAIL" };
        println!(
            "  {verdict} {name}: {num} / {den} = {fresh_ratio:.3} \
             (baseline {base_ratio:.3}, limit {limit:.3} = {max_regression}x)"
        );
        if fresh_ratio > limit {
            failures += 1;
        }
    }

    if failures > 0 {
        eprintln!(
            "{failures} perf guard(s) failed; if the regression is intentional, refresh \
             BENCH_speed.json (CRITERION_JSON=out.json cargo bench -p rppm-bench) and commit it"
        );
        std::process::exit(1);
    }
    println!("all perf guards passed");
}

//! Figure 5 binary: see [`rppm_bench::reports::fig5`].
//!
//! ```text
//! cargo run --release -p rppm-bench --bin fig5 [scale] [benchmark]
//! ```

use rppm_bench::{ProfileCache, RunCtx};

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.5);
    let only: Option<String> = std::env::args().nth(2);
    let cache = ProfileCache::new();
    let ctx = RunCtx::new(&cache, rppm_bench::default_jobs());
    print!(
        "{}",
        rppm_bench::reports::fig5(scale, only.as_deref(), &ctx).text
    );
}

//! Figure 5: average per-thread CPI stacks, RPPM (left) versus simulation
//! (right), normalized to the simulated total.
//!
//! The paper attributes RPPM's residual error chiefly to the base and
//! data-memory components. Usage:
//!
//! ```text
//! cargo run --release -p rppm-bench --bin fig5 [scale] [benchmark]
//! ```

use rppm_bench::{run_benchmark, Row};
use rppm_trace::{CpiStack, DesignPoint};
use rppm_workloads::Params;

fn print_stack(label: &str, s: &CpiStack, norm: f64) {
    let mut row = Row::new().cell(10, label);
    for v in s.values() {
        row = row.rcell(8, format!("{:.3}", v / norm));
    }
    row.rcell(8, format!("{:.3}", s.total() / norm)).print();
}

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.5);
    let only: Option<String> = std::env::args().nth(2);
    let params = Params {
        scale,
        ..Params::full()
    };
    let config = DesignPoint::Base.config();

    println!("Figure 5: normalized per-thread CPI stacks (RPPM vs simulation), scale {scale}");
    println!();
    let mut header = Row::new().cell(10, "");
    for l in CpiStack::LABELS {
        header = header.rcell(8, l);
    }
    header.rcell(8, "total").print();

    for bench in rppm_workloads::all() {
        if let Some(f) = &only {
            if bench.name != f {
                continue;
            }
        }
        let run = run_benchmark(&bench, &params, &config);
        // Per-thread mean stacks, normalized to the simulated mean total
        // (the paper normalizes both bars to simulation).
        let sim_stack = run.sim.mean_cpi_stack();
        let rppm_stack = run.rppm.mean_cpi_stack();
        let norm = sim_stack.total();
        println!(
            "\n{} (sim {:.0} cycles total):",
            bench.name, run.sim.total_cycles
        );
        print_stack("  RPPM", &rppm_stack, norm);
        print_stack("  sim", &sim_stack, norm);
    }
}

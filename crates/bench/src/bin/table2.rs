//! Table II: Rodinia benchmark analogs and their generation parameters —
//! the reproduction's equivalent of the paper's input-set table.
//!
//! ```text
//! cargo run --release -p rppm-bench --bin table2 [scale]
//! ```

use rppm_bench::Row;
use rppm_workloads::{Params, RODINIA};

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.0);
    let params = Params {
        scale,
        ..Params::full()
    };

    println!(
        "Table II: Rodinia analogs at scale {scale} (paper uses native inputs; see Table II there)"
    );
    println!();
    Row::new()
        .cell(16, "benchmark")
        .rcell(10, "threads")
        .rcell(12, "ops (ROI)")
        .rcell(10, "barriers")
        .print();
    println!("{}", "-".repeat(52));
    for bench in RODINIA {
        let prog = bench.build(&params);
        let barriers: usize = prog
            .threads
            .iter()
            .map(|t| {
                t.sync_ops()
                    .filter(|op| matches!(op, rppm_trace::SyncOp::Barrier { .. }))
                    .count()
            })
            .sum();
        Row::new()
            .cell(16, bench.name)
            .rcell(10, prog.num_threads())
            .rcell(12, prog.total_ops())
            .rcell(10, barriers)
            .print();
    }
}

//! Table II binary: see [`rppm_bench::reports::table2`].
//!
//! ```text
//! cargo run --release -p rppm-bench --bin table2 [scale]
//! ```

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.0);
    print!("{}", rppm_bench::reports::table2(scale).text);
}

//! Figure 4: prediction error of MAIN, CRIT and RPPM versus cycle-level
//! simulation, for all Rodinia and Parsec analogs on the base quad-core
//! configuration.
//!
//! Paper result: MAIN averages ~45% error (outliers >100% on Parsec), CRIT
//! ~28%, RPPM 11.2% with a 23% maximum. Usage:
//!
//! ```text
//! cargo run --release -p rppm-bench --bin fig4 [scale]
//! ```

use rppm_bench::{run_benchmark, Row};
use rppm_trace::DesignPoint;
use rppm_workloads::{Params, Suite};

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.5);
    let params = Params {
        scale,
        ..Params::full()
    };
    let config = DesignPoint::Base.config();

    println!("Figure 4: prediction error vs. simulation (base config, scale {scale})");
    println!();
    Row::new()
        .cell(16, "benchmark")
        .cell(8, "suite")
        .rcell(9, "MAIN")
        .rcell(9, "CRIT")
        .rcell(9, "RPPM")
        .print();
    println!("{}", "-".repeat(58));

    let mut main_errs = Vec::new();
    let mut crit_errs = Vec::new();
    let mut rppm_errs = Vec::new();
    let mut rodinia_done = false;

    for bench in rppm_workloads::all() {
        if bench.suite == Suite::Parsec && !rodinia_done {
            println!("{}", "-".repeat(58));
            rodinia_done = true;
        }
        let run = run_benchmark(&bench, &params, &config);
        let (m, c, r) = (run.main_error(), run.crit_error(), run.rppm_error());
        let sign = if run.rppm.total_cycles >= run.sim.total_cycles {
            '+'
        } else {
            '-'
        };
        Row::new()
            .cell(16, bench.name)
            .cell(8, bench.suite.to_string())
            .rcell(9, format!("{:.1}%", m * 100.0))
            .rcell(9, format!("{:.1}%", c * 100.0))
            .rcell(9, format!("{sign}{:.1}%", r * 100.0))
            .print();
        main_errs.push(m);
        crit_errs.push(c);
        rppm_errs.push(r);
    }

    println!("{}", "-".repeat(58));
    Row::new()
        .cell(25, "average")
        .rcell(9, format!("{:.1}%", rppm_core::mean(&main_errs) * 100.0))
        .rcell(9, format!("{:.1}%", rppm_core::mean(&crit_errs) * 100.0))
        .rcell(9, format!("{:.1}%", rppm_core::mean(&rppm_errs) * 100.0))
        .print();
    Row::new()
        .cell(25, "max")
        .rcell(9, format!("{:.1}%", rppm_core::max(&main_errs) * 100.0))
        .rcell(9, format!("{:.1}%", rppm_core::max(&crit_errs) * 100.0))
        .rcell(9, format!("{:.1}%", rppm_core::max(&rppm_errs) * 100.0))
        .print();
    println!();
    println!("Paper: MAIN avg 45% (max >110%), CRIT avg 28%, RPPM avg 11.2% (max 23%).");
}

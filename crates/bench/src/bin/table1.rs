//! Table I: accumulating prediction errors in barrier-synchronized
//! applications.
//!
//! A 1M-iteration loop is parallelized over `n` threads with a barrier per
//! round; per-thread inter-barrier predictions carry unbiased uniform noise
//! of ±1/5/10%. Single-threaded errors cancel; multi-threaded errors
//! accumulate as `E[max of n uniforms] = e·(n−1)/(n+1)`.
//!
//! ```text
//! cargo run --release -p rppm-bench --bin table1
//! ```

use rppm_bench::Row;
use rppm_core::{accumulation_bias, accumulation_error};

fn main() {
    let iterations: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1_000_000);
    let errors = [0.01, 0.05, 0.10];

    println!("Table I: accumulating prediction errors (loop of {iterations} iterations)");
    println!();
    Row::new()
        .cell(9, "#Threads")
        .rcell(12, "1%")
        .rcell(12, "5%")
        .rcell(12, "10%")
        .print();
    println!("{}", "-".repeat(48));
    for threads in [1u32, 2, 4, 8, 16] {
        let mut row = Row::new().cell(9, threads);
        for (k, &e) in errors.iter().enumerate() {
            let measured = accumulation_error(threads, e, iterations, 0xACC + k as u64);
            row = row.rcell(12, format!("{:.2}%", measured * 100.0));
        }
        row.print();
    }
    println!();
    println!("Closed form e(n-1)/(n+1) for comparison:");
    for threads in [1u32, 2, 4, 8, 16] {
        let mut row = Row::new().cell(9, threads);
        for &e in &errors {
            row = row.rcell(12, format!("{:.2}%", accumulation_bias(threads, e) * 100.0));
        }
        row.print();
    }
    println!();
    println!("Paper Table I: 2 threads: 0.33/1.67/3.34%; 4: 0.60/3.00/6.01%;");
    println!("               8: 0.78/3.89/7.79%; 16: 0.88/4.41/8.83%.");
}

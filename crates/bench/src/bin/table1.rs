//! Table I binary: see [`rppm_bench::reports::table1`].
//!
//! ```text
//! cargo run --release -p rppm-bench --bin table1 [iterations]
//! ```

fn main() {
    let iterations: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1_000_000);
    print!("{}", rppm_bench::reports::table1(iterations).text);
}

//! Golden accuracy-regression driver.
//!
//! ```text
//! # Check the current tree against the committed baselines (exit 1 on
//! # drift); always writes the delta report to results/golden_delta.txt:
//! cargo run --release -p rppm-bench --bin golden_diff [--jobs N]
//!
//! # Regenerate the baselines after an intentional accuracy change:
//! cargo run --release -p rppm-bench --bin golden_diff -- --update
//! ```
//!
//! The baselines live in `results/golden/` (override with `--golden DIR`)
//! and pin the JSON twins of fig4, table3 and table5 at
//! [`rppm_bench::golden::GOLDEN_SCALE`].

use rppm_bench::golden::{self, GOLDEN_RTOL};
use rppm_bench::{ProfileCache, RunCtx};
use serde_json::Value;
use std::path::PathBuf;

fn main() {
    let mut jobs = rppm_bench::default_jobs();
    let mut golden_dir = PathBuf::from("results/golden");
    let mut out_path = PathBuf::from("results/golden_delta.txt");
    let mut update = false;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--jobs" | "-j" => {
                let v = args.next().expect("--jobs needs a value");
                jobs = v.parse().expect("--jobs needs an integer");
            }
            "--golden" => golden_dir = args.next().expect("--golden needs a dir").into(),
            "--out" => out_path = args.next().expect("--out needs a file").into(),
            "--update" => update = true,
            other => {
                eprintln!("unknown argument `{other}`");
                std::process::exit(2);
            }
        }
    }

    let cache = ProfileCache::new();
    let ctx = RunCtx::new(&cache, jobs);
    let reports = golden::golden_reports(&ctx);

    if update {
        std::fs::create_dir_all(&golden_dir).expect("create golden dir");
        for r in &reports {
            let path = golden_dir.join(format!("{}.json", r.name));
            let text = serde_json::to_string(&r.json).expect("report JSON serializes");
            std::fs::write(&path, text).expect("write golden baseline");
            eprintln!("updated {}", path.display());
        }
        return;
    }

    let mut report_text = String::new();
    let mut drifted = false;
    for r in &reports {
        let path = golden_dir.join(format!("{}.json", r.name));
        match std::fs::read_to_string(&path) {
            Ok(text) => {
                let baseline: Value = serde_json::from_str(&text)
                    .unwrap_or_else(|e| panic!("{} is not valid JSON: {e}", path.display()));
                let deltas = golden::diff(&baseline, &r.json, GOLDEN_RTOL);
                drifted |= !deltas.is_empty();
                report_text.push_str(&golden::render_deltas(r.name, &deltas));
            }
            Err(e) => {
                drifted = true;
                report_text.push_str(&format!(
                    "{}: missing baseline {} ({e}); run golden_diff --update\n",
                    r.name,
                    path.display()
                ));
            }
        }
    }

    if let Some(parent) = out_path.parent() {
        std::fs::create_dir_all(parent).expect("create output dir");
    }
    std::fs::write(&out_path, &report_text).expect("write delta report");
    print!("{report_text}");
    eprintln!("delta report written to {}", out_path.display());
    if drifted {
        eprintln!(
            "accuracy drift detected; if intentional, regenerate baselines with \
             `cargo run --release -p rppm-bench --bin golden_diff -- --update`"
        );
        std::process::exit(1);
    }
}

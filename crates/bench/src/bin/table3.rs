//! Table III: dynamic synchronization events in the Parsec benchmarks,
//! counted by the profiler from the one-time profile (critical sections,
//! barriers, condition-variable events).
//!
//! Our analogs scale the dynamic counts down (10-350x depending on the
//! benchmark) to keep golden-reference simulation fast; the shape — which
//! benchmark is dominated by which primitive — is the reproduced result.
//!
//! ```text
//! cargo run --release -p rppm-bench --bin table3 [scale]
//! ```

use rppm_bench::Row;
use rppm_profiler::profile;
use rppm_workloads::{Params, PARSEC};

/// Paper's Table III rows for reference (CS, barriers, cond. vars).
const PAPER: [(&str, &str, &str, &str); 10] = [
    ("blackscholes", "-", "-", "-"),
    ("bodytrack", "6,700", "98", "25"),
    ("canneal", "4", "64", "-"),
    ("facesim", "10,472", "-", "1,232"),
    ("fluidanimate", "2,140,206", "50", "-"),
    ("freqmine", "-", "-", "-"),
    ("raytrace", "47", "-", "15"),
    ("streamcluster", "68", "13,003", "34"),
    ("swaptions", "-", "-", "-"),
    ("vips", "8,973", "-", "1,433"),
];

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1.0);
    let params = Params {
        scale,
        ..Params::full()
    };

    println!("Table III: dynamic synchronization events (Parsec analogs, scale {scale})");
    println!();
    Row::new()
        .cell(16, "benchmark")
        .rcell(10, "CS")
        .rcell(10, "barriers")
        .rcell(10, "cond.var")
        .cell(3, "")
        .cell(30, "paper (CS / barrier / cond)")
        .print();
    println!("{}", "-".repeat(84));
    for (bench, paper) in PARSEC.iter().zip(PAPER) {
        let prog = bench.build(&params);
        let prof = profile(&prog);
        let (cs, bar, cond) = prof.sync_event_counts();
        let fmt = |v: u64| {
            if v == 0 {
                "-".to_string()
            } else {
                v.to_string()
            }
        };
        Row::new()
            .cell(16, bench.name)
            .rcell(10, fmt(cs))
            .rcell(10, fmt(bar))
            .rcell(10, fmt(cond))
            .cell(3, "")
            .cell(30, format!("{} / {} / {}", paper.1, paper.2, paper.3))
            .print();

        // Bonus: the profiler's condition-variable usage recognition
        // (Section III-A of the paper).
        for usage in prof.classify_cond_vars() {
            println!("    cond-var usage: {usage:?}");
        }
    }
    println!();
    println!("Counts are scaled down vs. the paper (10-350x) to keep simulation fast;");
    println!("the dominance pattern per benchmark is the reproduced result.");
}

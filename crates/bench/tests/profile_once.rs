//! The "profile once" contract: one `profile()` call per distinct
//! (workload, params) pair, no matter how many configurations, reports, or
//! worker threads consume the profile.
//!
//! Keep this file to a single `#[test]`: the hook is a process-wide
//! counter, and a second concurrently-running test in this binary would
//! perturb the deltas.

use rppm_bench::{ExperimentPlan, ImportedTrace, ProfileCache, RunCtx};
use rppm_profiler::profile_call_count;
use rppm_trace::DesignPoint;
use rppm_workloads::{by_name, Params};

#[test]
fn each_workload_is_profiled_exactly_once() {
    let params = Params {
        scale: 0.02,
        seed: 1,
    };
    let benches: Vec<_> = ["backprop", "nn", "pathfinder"]
        .into_iter()
        .map(|n| by_name(n).expect("known"))
        .collect();
    let configs: Vec<_> = DesignPoint::ALL.iter().map(|d| d.config()).collect();

    let cache = ProfileCache::new();
    let before = profile_call_count();

    // 3 workloads × 5 configs, 4 worker threads.
    let runs = ExperimentPlan::cross(benches.clone(), params, configs.clone()).run(&cache, 4);
    assert_eq!(runs.len(), 3);
    assert!(runs.iter().all(|r| r.cells.len() == 5));
    assert_eq!(
        profile_call_count() - before,
        3,
        "one profile() per workload despite 15 cells"
    );

    // A second plan over the same cache (as run_all's reports do) must not
    // re-profile anything...
    let ctx = RunCtx::new(&cache, 2);
    let again = ExperimentPlan::single_config(benches.clone(), params, DesignPoint::Base.config())
        .run(ctx.cache, ctx.jobs);
    assert_eq!(again.len(), 3);
    assert_eq!(profile_call_count() - before, 3, "cache hit across plans");

    // ...while a different scale is a different workload job.
    let other = Params {
        scale: 0.03,
        seed: 1,
    };
    ExperimentPlan::cross([benches[0]], other, Vec::new()).run(&cache, 1);
    assert_eq!(profile_call_count() - before, 4);
    assert_eq!(cache.len(), 4);

    // Imported traces obey the same contract: a trace that round-trips
    // through the interchange format is profiled exactly once across all
    // design points and across plans...
    let text = rppm_trace::export_program(&by_name("lud").expect("known").build(&params))
        .expect("exports");
    let imported = ImportedTrace::new(rppm_trace::import_program(&text).expect("imports"));
    let runs = ExperimentPlan::cross([imported.clone()], params, configs).run(&cache, 4);
    assert_eq!(runs.len(), 1);
    assert_eq!(runs[0].cells.len(), 5);
    assert_eq!(
        profile_call_count() - before,
        5,
        "one profile() for the imported trace despite 5 cells"
    );
    ExperimentPlan::single_config([imported.clone()], params, DesignPoint::Base.config())
        .run(&cache, 2);
    assert_eq!(profile_call_count() - before, 5, "cache hit across plans");

    // ...and the cache keys on trace *content*, not Params: re-running the
    // same import under different Params must not re-profile, while a
    // second import of the same file shares the first one's profile.
    let reimported = ImportedTrace::new(rppm_trace::import_program(&text).expect("imports"));
    ExperimentPlan::cross([reimported], other, Vec::new()).run(&cache, 1);
    assert_eq!(profile_call_count() - before, 5, "content-keyed cache hit");
    assert_eq!(cache.len(), 5);
}

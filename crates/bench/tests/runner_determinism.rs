//! Parallel experiment execution must be a pure speedup: the rendered
//! report text and its JSON twin are byte-identical whether a plan runs on
//! one worker thread or many.

use rppm_bench::reports;
use rppm_bench::{ProfileCache, RunCtx};

const SCALE: f64 = 0.02;

fn render_all(jobs: usize) -> Vec<(&'static str, String, String)> {
    let cache = ProfileCache::new();
    let ctx = RunCtx::new(&cache, jobs);
    [
        reports::table3(SCALE, &ctx),
        reports::fig4(SCALE, &ctx),
        reports::fig5(SCALE, Some("cfd"), &ctx),
        reports::fig6(SCALE, &ctx),
        reports::table5(SCALE, &ctx),
    ]
    .into_iter()
    .map(|r| {
        let json = serde_json::to_string(&r.json).expect("serializes");
        (r.name, r.text, json)
    })
    .collect()
}

#[test]
fn parallel_output_is_byte_identical_to_sequential() {
    let sequential = render_all(1);
    let parallel = render_all(4);
    for ((name, seq_text, seq_json), (_, par_text, par_json)) in
        sequential.into_iter().zip(parallel)
    {
        assert_eq!(seq_text, par_text, "{name}: text differs with --jobs 4");
        assert_eq!(seq_json, par_json, "{name}: JSON differs with --jobs 4");
    }
}

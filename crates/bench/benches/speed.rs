//! The "R" in RPPM: model speed versus detailed simulation.
//!
//! The paper's pitch is that one profiling run (an order of magnitude
//! faster than simulation) plus near-instant analytical predictions replace
//! one simulation per design point. These benches measure all three stages
//! plus the core model components.

use criterion::{criterion_group, criterion_main, Criterion};
use rppm_core::{execute, predict, PreparedProfile, ThreadTimeline};
use rppm_profiler::profile;
use rppm_sim::{simulate, simulate_profiled, simulate_reference};
use rppm_statstack::{MultiThreadCollector, ReuseHistogram, StackDistanceModel};
use rppm_trace::{BlockItem, CursorItem, DesignPoint, Rng, SyncOp, ThreadCursor};
use rppm_workloads::{by_name, Params};

fn cursor(c: &mut Criterion) {
    let bench = by_name("hotspot").expect("known benchmark");
    let params = Params {
        scale: 0.1,
        ..Params::full()
    };
    let program = bench.build(&params);
    let total_ops = program.total_ops();

    let mut g = c.benchmark_group("cursor");
    g.sample_size(10);
    // The shared trace cursor, driven one op at a time the way the
    // profiler and simulator historically did (item + advance per op).
    g.bench_function("walk_per_op_hotspot_0.1", |b| {
        b.iter(|| {
            let mut ops: u64 = 0;
            for script in &std::hint::black_box(&program).threads {
                let mut cur = ThreadCursor::new(script);
                while let Some(item) = cur.item() {
                    if let CursorItem::Op(op) = item {
                        ops = ops.wrapping_add(op.line ^ op.code_line);
                    }
                    cur.advance();
                }
            }
            ops
        })
    });
    // The zero-copy block API the profiler and simulator now drive:
    // whole-block slices lent straight out of the expansion buffer.
    g.bench_function("walk_blocks_hotspot_0.1", |b| {
        b.iter(|| {
            let mut acc: u64 = 0;
            for script in &std::hint::black_box(&program).threads {
                let mut cur = ThreadCursor::new(script);
                loop {
                    match cur.peek_block() {
                        None => break,
                        Some(BlockItem::Sync(_)) => cur.consume_sync(),
                        Some(BlockItem::Ops(ops)) => {
                            for op in ops {
                                acc = acc.wrapping_add(op.line ^ op.code_line);
                            }
                            let n = ops.len();
                            cur.consume_ops(n);
                        }
                    }
                }
            }
            acc
        })
    });
    g.finish();
    eprintln!("  (cursor walks cover {total_ops} ops per iteration)");
}

fn trace_io(c: &mut Criterion) {
    let bench = by_name("hotspot").expect("known benchmark");
    let params = Params {
        scale: 0.1,
        ..Params::full()
    };
    let program = bench.build(&params);
    let json = rppm_trace::export_program(&program).expect("exports");
    let bin = rppm_trace::export_program_binary(&program).expect("exports");

    let mut g = c.benchmark_group("trace_io");
    g.bench_function("export_json_hotspot_0.1", |b| {
        b.iter(|| rppm_trace::export_program(std::hint::black_box(&program)).unwrap())
    });
    g.bench_function("export_binary_hotspot_0.1", |b| {
        b.iter(|| rppm_trace::export_program_binary(std::hint::black_box(&program)).unwrap())
    });
    g.bench_function("import_json_hotspot_0.1", |b| {
        b.iter(|| rppm_trace::import_program(std::hint::black_box(&json)).unwrap())
    });
    g.bench_function("import_binary_hotspot_0.1", |b| {
        b.iter(|| rppm_trace::import_program_binary(std::hint::black_box(&bin)).unwrap())
    });
    g.finish();
    eprintln!(
        "  (trace sizes: {} JSON bytes vs {} binary bytes)",
        json.len(),
        bin.len()
    );
}

fn opstream(c: &mut Criterion) {
    let bench = by_name("hotspot").expect("known benchmark");
    let params = Params {
        scale: 0.1,
        ..Params::full()
    };
    let program = bench.build(&params);
    let ops = rppm_trace::export_program_ops(&program).expect("records");
    let path = std::env::temp_dir().join(format!("rppm-bench-opstream-{}.rpt", std::process::id()));
    std::fs::write(&path, &ops).expect("write op stream");

    let mut g = c.benchmark_group("opstream");
    g.sample_size(10);
    // Recording cost: expand once and serialize the raw micro-op stream.
    // Like profile(), this walks every op, so the ratio between the two is
    // a machine-independent throughput pin.
    g.bench_function("record_ops_hotspot_0.1", |b| {
        b.iter(|| rppm_trace::export_program_ops(std::hint::black_box(&program)).unwrap())
    });
    // Import throughput of a recorded stream: the full trusting-nobody
    // open (header decode, section scan, recorded-vs-decoded cross-check).
    g.bench_function("open_replay_hotspot_0.1", |b| {
        b.iter(|| rppm_trace::OpReplay::open(std::hint::black_box(&path)).unwrap())
    });
    // Out-of-core profiling: replayed chunks must stay near the in-memory
    // expansion speed (gated against pipeline/profile_hotspot_0.1).
    let replay = rppm_trace::OpReplay::open(&path).expect("open");
    g.bench_function("profile_replay_hotspot_0.1", |b| {
        b.iter(|| rppm_profiler::profile_replay(std::hint::black_box(&replay)))
    });
    g.finish();
    let _ = std::fs::remove_file(&path);
    eprintln!(
        "  (recorded op stream: {} bytes for {} ops)",
        ops.len(),
        program.total_ops()
    );
}

fn pipeline(c: &mut Criterion) {
    let bench = by_name("hotspot").expect("known benchmark");
    let params = Params {
        scale: 0.1,
        ..Params::full()
    };
    let program = bench.build(&params);
    let config = DesignPoint::Base.config();
    let prof = profile(&program);

    let mut g = c.benchmark_group("pipeline");
    g.sample_size(10);
    g.bench_function("simulate_hotspot_0.1", |b| {
        b.iter(|| simulate(std::hint::black_box(&program), &config))
    });
    // The pre-PGO naive dispatch, kept as a pinned baseline: the
    // simulate/simulate_reference ratio IS the superinstruction speedup,
    // measured in the same process so machine noise cancels.
    g.bench_function("simulate_reference_hotspot_0.1", |b| {
        b.iter(|| simulate_reference(std::hint::black_box(&program), &config))
    });
    // Self-profiling overhead: must stay marginal over plain simulate.
    g.bench_function("simulate_profiled_hotspot_0.1", |b| {
        b.iter(|| simulate_profiled(std::hint::black_box(&program), &config))
    });
    g.bench_function("profile_hotspot_0.1", |b| {
        b.iter(|| profile(std::hint::black_box(&program)))
    });
    g.bench_function("predict_hotspot_0.1", |b| {
        b.iter(|| predict(std::hint::black_box(&prof), &config))
    });
    // The headline workflow: one profile, five design points.
    g.bench_function("predict_5_design_points", |b| {
        b.iter(|| {
            DesignPoint::ALL
                .iter()
                .map(|dp| predict(std::hint::black_box(&prof), &dp.config()).total_cycles)
                .sum::<f64>()
        })
    });
    g.finish();
}

fn dse(c: &mut Criterion) {
    use rppm_core::ConfigSpace;
    use std::sync::Arc;

    // kmeans at 0.1: a barrier-heavy workload whose profile (20 distinct
    // epoch cells) is representative of the catalog; scalar predict()
    // rebuilds every StatStack model per call, the prepared path builds
    // them once.
    let bench = by_name("kmeans").expect("known benchmark");
    let params = Params {
        scale: 0.1,
        ..Params::full()
    };
    let prof = Arc::new(profile(&bench.build(&params)));
    let space = ConfigSpace::default_space();
    // 256 points spread across the whole space: a slice of the sweep
    // `rppm dse` runs, with the realistic mix of repeated and novel cache
    // geometries the memoized rate columns see.
    let stride = space.len() / 256;
    let configs: Vec<_> = (0..256).map(|i| space.config(i * stride)).collect();
    let scalar_config = configs[0].clone();

    let mut g = c.benchmark_group("dse");
    g.bench_function("prepare_kmeans_0.1", |b| {
        b.iter(|| PreparedProfile::new(Arc::clone(std::hint::black_box(&prof))))
    });
    let prep = PreparedProfile::new(Arc::clone(&prof));
    let mut batch = prep.batched();
    let mut out = vec![0.0; configs.len()];
    // Per-point cost = this mean / 256.
    g.bench_function("batched_256_kmeans_0.1", |b| {
        b.iter(|| {
            batch.eval_into(std::hint::black_box(&configs), &mut out);
            out.iter().sum::<f64>()
        })
    });
    g.bench_function("predict_scalar_kmeans_0.1", |b| {
        b.iter(|| predict(std::hint::black_box(&prof), &scalar_config).total_cycles)
    });
    g.finish();
}

fn components(c: &mut Criterion) {
    // StatStack miss-rate queries.
    let mut h = ReuseHistogram::new();
    let mut rng = Rng::new(42);
    for _ in 0..100_000 {
        h.record(rng.next_below(1 << 20));
    }
    h.record_cold(1000);
    let model = StackDistanceModel::new(&h);
    let geom = DesignPoint::Base.config().l2;

    let mut g = c.benchmark_group("components");
    g.bench_function("statstack_build_100k", |b| {
        b.iter(|| StackDistanceModel::new(std::hint::black_box(&h)))
    });
    g.bench_function("statstack_miss_rate", |b| {
        b.iter(|| std::hint::black_box(&model).miss_rate_geom(&geom))
    });

    // The profiling hot path: the multi-threaded reuse-distance collector
    // fed a 4-thread interleaved mix of streaming and random accesses.
    g.bench_function("mt_collector_100k_accesses", |b| {
        b.iter(|| {
            let mut c = MultiThreadCollector::new(4);
            let mut rng = Rng::new(7);
            for i in 0..100_000u64 {
                let t = (i & 3) as usize;
                let line = if i & 4 == 0 {
                    (i >> 3) & 0xFFF
                } else {
                    rng.next_below(1 << 16)
                };
                c.access(t, line, i & 15 == 0);
            }
            std::hint::black_box(c.total_accesses())
        })
    });

    // Symbolic execution of a 4-thread, 1000-barrier schedule (thread 0
    // creates the workers first, as a real profile would record).
    let config = DesignPoint::Base.config();
    let timelines: Vec<ThreadTimeline> = (0..4u32)
        .map(|t| {
            let mut rng = Rng::new(t as u64);
            let mut events: Vec<SyncOp> = if t == 0 {
                (1..4).map(|c| SyncOp::Create { child: c.into() }).collect()
            } else {
                Vec::new()
            };
            events.extend((0..1000).map(|_| SyncOp::Barrier {
                id: 0.into(),
                via_cond: false,
            }));
            let epochs: Vec<f64> = (0..events.len() + 1)
                .map(|_| 1000.0 + rng.next_f64() * 200.0)
                .collect();
            ThreadTimeline { epochs, events }
        })
        .collect();
    g.bench_function("symexec_4x1000_barriers", |b| {
        b.iter(|| execute(std::hint::black_box(&timelines), &config))
    });
    g.finish();
}

fn sched(c: &mut Criterion) {
    // The shape the event queue exists for: thread 0 grinds through a
    // long stream of uncontended lock/unlock events while the other
    // N-1 threads sit in the heap on one far-future compute epoch. The
    // retired linear scan paid O(N) per thread-0 step here; the heap
    // pays O(log N), so the 1024-thread run must stay within a small
    // constant of its 32-thread twin (gated by the `sched_1024_over_32`
    // ratio in BENCH_speed.json).
    fn mostly_idle(n: u32, lock_pairs: usize) -> Vec<ThreadTimeline> {
        (0..n)
            .map(|t| {
                let mut rng = Rng::new(t as u64);
                if t == 0 {
                    let mut events: Vec<SyncOp> =
                        (1..n).map(|c| SyncOp::Create { child: c.into() }).collect();
                    for _ in 0..lock_pairs {
                        events.push(SyncOp::Lock { id: 0.into() });
                        events.push(SyncOp::Unlock { id: 0.into() });
                    }
                    events.extend((1..n).map(|c| SyncOp::Join { child: c.into() }));
                    let epochs = (0..events.len() + 1)
                        .map(|_| 1000.0 + rng.next_f64() * 200.0)
                        .collect();
                    ThreadTimeline { epochs, events }
                } else {
                    // One enormous epoch: created early, resident in the
                    // queue for the whole grind, joined at the end.
                    ThreadTimeline {
                        epochs: vec![80_000_000.0 + rng.next_f64() * 1000.0],
                        events: Vec::new(),
                    }
                }
            })
            .collect()
    }

    let config = DesignPoint::Base.config();
    let idle_32 = mostly_idle(32, 40_000);
    let idle_1024 = mostly_idle(1024, 40_000);

    let mut g = c.benchmark_group("sched");
    g.bench_function("symexec_idle_32", |b| {
        b.iter(|| execute(std::hint::black_box(&idle_32), &config))
    });
    g.bench_function("symexec_idle_1024", |b| {
        b.iter(|| execute(std::hint::black_box(&idle_1024), &config))
    });
    g.finish();
}

criterion_group!(benches, pipeline, dse, components, cursor, trace_io, opstream, sched);
criterion_main!(benches);

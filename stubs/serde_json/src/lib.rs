//! Offline stand-in for serde_json (see `stubs/README.md`).
//!
//! Renders the stub-serde [`Value`] tree as JSON text and parses it back.
//! Integers round-trip exactly (they are never routed through `f64`);
//! floating-point numbers are printed with Rust's shortest-round-trip
//! formatting, so `to_string` → `from_str` is lossless.

#![warn(missing_docs)]

pub use serde::Error;
pub use serde::Value;
use serde::{Deserialize, Serialize};

/// Serializes `value` as compact JSON text.
///
/// Errors if the tree contains a non-finite float (JSON cannot express
/// `NaN` / `inf`), matching real serde_json behavior.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out)?;
    Ok(out)
}

/// Parses JSON text into a `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: s.as_bytes(),
        pos: 0,
        depth: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at byte {} of JSON input",
            parser.pos
        )));
    }
    T::from_value(&value)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(v: &Value, out: &mut String) -> Result<(), Error> {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(n) => {
            if !n.is_finite() {
                return Err(Error::custom("JSON cannot represent non-finite float"));
            }
            let s = n.to_string();
            out.push_str(&s);
            // Keep the number recognizable as a float on re-parse.
            if !s.contains(['.', 'e', 'E']) {
                out.push_str(".0");
            }
        }
        Value::String(s) => write_string(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out)?;
            }
            out.push(']');
        }
        Value::Object(entries) => {
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(k, out);
                out.push(':');
                write_value(val, out)?;
            }
            out.push('}');
        }
    }
    Ok(())
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

/// Maximum container nesting accepted by the recursive-descent parser.
/// The parser recurses once per `[` / `{`, so without a cap hostile input
/// like `[[[[…` overflows the stack — an abort, not an `Err`. Real
/// serde_json defaults to 128; match it.
const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn enter(&mut self) -> Result<(), Error> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(Error::custom(format!(
                "JSON nested deeper than {MAX_DEPTH} levels at byte {}",
                self.pos
            )));
        }
        Ok(())
    }
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at byte {} of JSON input",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::String),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            _ => Err(Error::custom(format!(
                "unexpected JSON at byte {}",
                self.pos
            ))),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        self.enter()?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::custom(format!("bad array at byte {}", self.pos))),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        self.enter()?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(Error::custom(format!("bad object at byte {}", self.pos))),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::custom("invalid UTF-8 in JSON string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::custom("unterminated escape in JSON string"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::custom("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::custom("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::custom("bad \\u escape"))?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::custom("bad \\u code point"))?,
                            );
                        }
                        other => {
                            return Err(Error::custom(format!(
                                "unknown escape `\\{}`",
                                other as char
                            )))
                        }
                    }
                }
                _ => return Err(Error::custom("unterminated JSON string")),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("invalid number"))?;
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::custom(format!("invalid JSON number `{text}`")))
    }
}

#[cfg(test)]
mod depth_tests {
    use crate::Value;

    #[test]
    fn hostile_nesting_is_an_error_not_a_stack_overflow() {
        let evil = "[".repeat(100_000);
        let err = crate::from_str::<Value>(&evil).unwrap_err();
        assert!(err.to_string().contains("nested deeper"), "{err}");
        let evil_obj = "{\"k\":".repeat(100_000);
        assert!(crate::from_str::<Value>(&evil_obj).is_err());
    }

    #[test]
    fn reasonable_nesting_still_parses() {
        let ok = format!("{}0{}", "[".repeat(100), "]".repeat(100));
        assert!(crate::from_str::<Value>(&ok).is_ok());
    }
}

//! Offline stand-in for proptest (see `stubs/README.md`).
//!
//! Supports the subset this repository uses: the `proptest!` macro with an
//! optional `#![proptest_config(...)]` header, range strategies over
//! integers and floats, and `prop_assert!` / `prop_assert_eq!`. Cases are
//! sampled from a deterministic splitmix64 stream (no shrinking), so test
//! failures reproduce exactly across runs.

#![warn(missing_docs)]

use std::ops::Range;

/// Test-runner configuration (only the case count is honored).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of sampled cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` sampled cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 32 }
    }
}

/// Deterministic splitmix64 sample stream.
#[derive(Debug, Clone)]
pub struct SampleRng {
    state: u64,
}

impl SampleRng {
    /// Creates a stream seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        SampleRng { state: seed }
    }

    /// Next raw 64-bit sample.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform sample in `[0, 1)`.
    pub fn next_unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A source of sampled values (the proptest strategy trait, minus shrinking).
pub trait Strategy {
    /// The value type produced.
    type Value;
    /// Draws one sample.
    fn sample(&self, rng: &mut SampleRng) -> Self::Value;
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut SampleRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut SampleRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i64 - self.start as i64) as u64;
                (self.start as i64 + (rng.next_u64() % span) as i64) as $t
            }
        }
    )*};
}

impl_signed_range_strategy!(i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut SampleRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.next_unit_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn sample(&self, rng: &mut SampleRng) -> f32 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.next_unit_f64() as f32 * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut SampleRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (S0.0, S1.1)
    (S0.0, S1.1, S2.2)
    (S0.0, S1.1, S2.2, S3.3)
}

/// Types with a canonical whole-domain strategy (used by [`prelude::any`]).
pub trait Arbitrary: Sized {
    /// Draws an unconstrained sample.
    fn arbitrary(rng: &mut SampleRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut SampleRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut SampleRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut SampleRng) -> f64 {
        rng.next_unit_f64()
    }
}

/// Strategy drawing from a type's full domain (see [`prelude::any`]).
pub struct AnyStrategy<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut SampleRng) -> T {
        T::arbitrary(rng)
    }
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{SampleRng, Strategy};
    use std::ops::Range;

    /// Strategy producing vectors of `element` samples with a length drawn
    /// from `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    /// See [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut SampleRng) -> Vec<S::Value> {
            assert!(self.size.start < self.size.end, "empty strategy range");
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Everything a `proptest!` test body needs in scope.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, ProptestConfig,
        SampleRng, Strategy,
    };

    /// Strategy over a type's full domain, mirroring `proptest::prelude::any`.
    pub fn any<T: crate::Arbitrary>() -> crate::AnyStrategy<T> {
        crate::AnyStrategy {
            _marker: std::marker::PhantomData,
        }
    }
}

/// Asserts a property, reporting the failing expression.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Asserts two expressions are not equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running the body over sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            for __case in 0..__cfg.cases {
                // Seed mixes the property name so distinct tests explore
                // distinct points even with identical strategies.
                let mut __seed: u64 = 0xcbf2_9ce4_8422_2325;
                for b in stringify!($name).bytes() {
                    __seed = (__seed ^ b as u64).wrapping_mul(0x1000_0000_01b3);
                }
                let mut __rng =
                    $crate::SampleRng::new(__seed ^ (__case as u64).wrapping_mul(0x9E37_79B9));
                $(let $arg = $crate::Strategy::sample(&$strat, &mut __rng);)*
                $body
            }
        }
    )*};
}

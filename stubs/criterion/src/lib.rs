//! Offline stand-in for criterion (see `stubs/README.md`).
//!
//! A minimal wall-clock benchmark harness exposing the API surface the
//! `speed` bench uses: `Criterion`, `benchmark_group` / `sample_size` /
//! `bench_function` / `finish`, `Bencher::iter`, `black_box`, and the
//! `criterion_group!` / `criterion_main!` macros. Each benchmark warms up
//! briefly, then reports min / mean / max wall time per iteration. The
//! statistics are far simpler than real criterion's (no outlier analysis,
//! no HTML reports), but the numbers are honest and the harness runs with
//! zero dependencies.

//! Setting the `CRITERION_JSON` environment variable to a file path makes
//! the harness additionally write every measurement as a JSON object (see
//! [`write_json_if_requested`]), so benchmark runs can be committed as
//! machine-readable baselines (e.g. `BENCH_speed.json`).

#![warn(missing_docs)]

use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Re-export of the standard opaque-value hint, matching `criterion::black_box`.
pub use std::hint::black_box;

/// One recorded measurement, kept for the optional JSON report.
struct Record {
    name: String,
    min_ns: u128,
    mean_ns: u128,
    max_ns: u128,
    samples: usize,
}

/// Measurements collected by every benchmark run in this process.
static RECORDS: Mutex<Vec<Record>> = Mutex::new(Vec::new());

/// If `CRITERION_JSON` is set, writes all measurements collected so far to
/// that path as a JSON object `{ "<group/name>": {"min_ns": …, "mean_ns":
/// …, "max_ns": …, "samples": …}, … }`. Called automatically by the
/// [`criterion_main!`]-generated `main` after all groups have run.
///
/// # Panics
///
/// Panics if the file cannot be written.
pub fn write_json_if_requested() {
    let Ok(path) = std::env::var("CRITERION_JSON") else {
        return;
    };
    let records = RECORDS.lock().expect("records lock");
    let mut out = String::from("{\n");
    for (i, r) in records.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        out.push_str(&format!(
            "  \"{}\": {{\"min_ns\": {}, \"mean_ns\": {}, \"max_ns\": {}, \"samples\": {}}}",
            r.name, r.min_ns, r.mean_ns, r.max_ns, r.samples
        ));
    }
    out.push_str("\n}\n");
    std::fs::write(&path, out).unwrap_or_else(|e| panic!("write {path}: {e}"));
    eprintln!("benchmark JSON written to {path}");
}

const DEFAULT_SAMPLES: usize = 20;
const WARMUP: Duration = Duration::from_millis(200);
const TARGET_SAMPLE_TIME: Duration = Duration::from_millis(100);

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\ngroup: {name}");
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
            samples: DEFAULT_SAMPLES,
        }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(None, name, DEFAULT_SAMPLES, f);
        self
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    samples: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(2);
        self
    }

    /// Times one benchmark function.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(Some(&self.name), name, self.samples, f);
        self
    }

    /// Ends the group (reports are printed as benches run).
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; call [`Bencher::iter`] with the code
/// under test.
pub struct Bencher {
    samples: usize,
    results: Vec<Duration>,
}

impl Bencher {
    /// Times `routine`, collecting the configured number of samples.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        // Warm-up: also estimates how many iterations fill a sample window.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < WARMUP {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed() / warm_iters.max(1) as u32;
        let iters_per_sample = if per_iter.is_zero() {
            1000
        } else {
            (TARGET_SAMPLE_TIME.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1_000_000) as u64
        };

        self.results.clear();
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            self.results.push(start.elapsed() / iters_per_sample as u32);
        }
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(
    group: Option<&str>,
    name: &str,
    samples: usize,
    mut f: F,
) {
    let mut bencher = Bencher {
        samples,
        results: Vec::new(),
    };
    f(&mut bencher);
    if bencher.results.is_empty() {
        println!("  {name}: no samples (Bencher::iter never called)");
        return;
    }
    let min = bencher.results.iter().min().unwrap();
    let max = bencher.results.iter().max().unwrap();
    let mean = bencher.results.iter().sum::<Duration>() / bencher.results.len() as u32;
    println!(
        "  {name}: [{} {} {}] ({} samples)",
        fmt_duration(*min),
        fmt_duration(mean),
        fmt_duration(*max),
        bencher.results.len()
    );
    RECORDS.lock().expect("records lock").push(Record {
        name: match group {
            Some(g) => format!("{g}/{name}"),
            None => name.to_string(),
        },
        min_ns: min.as_nanos(),
        mean_ns: mean.as_nanos(),
        max_ns: max.as_nanos(),
        samples: bencher.results.len(),
    });
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.3} s", nanos as f64 / 1e9)
    }
}

/// Bundles benchmark functions into a runnable group, mirroring criterion's
/// macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
            $crate::write_json_if_requested();
        }
    };
}

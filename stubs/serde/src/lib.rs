//! Offline stand-in for serde (see `stubs/README.md`).
//!
//! The real serde crate is unavailable in this build environment, so this
//! crate provides the same *surface* the repository uses — `Serialize` /
//! `Deserialize` traits plus derive macros — over a much simpler model:
//! every value serializes into a [`Value`] tree, and `serde_json` (also
//! vendored) renders that tree as JSON text. Round-tripping is lossless for
//! everything the profile artifact contains (including full-width `u64`
//! values, which are kept out of `f64`).

#![warn(missing_docs)]

use std::collections::{BTreeMap, HashMap};
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// A serialized value tree (the JSON data model, with integers kept exact).
///
/// Objects are represented as ordered `(key, value)` pairs so field order is
/// stable and no map type is imposed on users.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Non-negative integer (kept exact; never routed through `f64`).
    U64(u64),
    /// Negative integer.
    I64(i64),
    /// Floating-point number.
    F64(f64),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object as ordered key/value pairs.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Returns the object entries if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// Returns the elements if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Returns the string if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the boolean if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Numeric value as `f64` (accepting any numeric representation).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::U64(n) => Some(*n as f64),
            Value::I64(n) => Some(*n as f64),
            Value::F64(n) => Some(*n),
            _ => None,
        }
    }

    /// Numeric value as `u64`, if exactly representable.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::U64(n) => Some(*n),
            Value::I64(n) if *n >= 0 => Some(*n as u64),
            Value::F64(n) if n.fract() == 0.0 && *n >= 0.0 && *n <= (1u64 << 53) as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// Numeric value as `i64`, if exactly representable.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::U64(n) if *n <= i64::MAX as u64 => Some(*n as i64),
            Value::I64(n) => Some(*n),
            Value::F64(n) if n.fract() == 0.0 && n.abs() <= (1u64 << 53) as f64 => Some(*n as i64),
            _ => None,
        }
    }

    /// Looks up `name` in object entries.
    pub fn get<'a>(entries: &'a [(String, Value)], name: &str) -> Option<&'a Value> {
        entries.iter().find(|(k, _)| k == name).map(|(_, v)| v)
    }

    /// Looks up `name`, reporting a descriptive error when absent (used by
    /// the derive macros).
    pub fn expect_field<'a>(
        entries: &'a [(String, Value)],
        name: &str,
        ty: &str,
    ) -> Result<&'a Value, Error> {
        Value::get(entries, name)
            .ok_or_else(|| Error::custom(format!("missing field `{name}` for {ty}")))
    }
}

/// Serialization / deserialization error (a message, like `serde_json`'s).
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Creates an error from a message.
    pub fn custom(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// Types that can serialize themselves into a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` into a value tree.
    fn to_value(&self) -> Value;
}

/// Types that can reconstruct themselves from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from a value tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v
                    .as_u64()
                    .ok_or_else(|| Error::custom(concat!("expected ", stringify!($t))))?;
                <$t>::try_from(n)
                    .map_err(|_| Error::custom(concat!("out of range for ", stringify!($t))))
            }
        }
    )*};
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = *self as i64;
                if n >= 0 {
                    Value::U64(n as u64)
                } else {
                    Value::I64(n)
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v
                    .as_i64()
                    .ok_or_else(|| Error::custom(concat!("expected ", stringify!($t))))?;
                <$t>::try_from(n)
                    .map_err(|_| Error::custom(concat!("out of range for ", stringify!($t))))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);
impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64().ok_or_else(|| Error::custom("expected number"))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64()
            .map(|n| n as f32)
            .ok_or_else(|| Error::custom("expected number"))
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_bool().ok_or_else(|| Error::custom("expected boolean"))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::custom("expected string"))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let s = v.as_str().ok_or_else(|| Error::custom("expected char"))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::custom("expected single-character string")),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::custom("expected array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let vec: Vec<T> = Vec::from_value(v)?;
        <[T; N]>::try_from(vec)
            .map_err(|got| Error::custom(format!("expected {N} elements, got {}", got.len())))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(v) => v.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let arr = v.as_array().ok_or_else(|| Error::custom("expected tuple array"))?;
                Ok(($(
                    $name::from_value(
                        arr.get($idx).ok_or_else(|| Error::custom("tuple too short"))?,
                    )?,
                )+))
            }
        }
    )*};
}

impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_object()
            .ok_or_else(|| Error::custom("expected object"))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
            .collect()
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_object()
            .ok_or_else(|| Error::custom("expected object"))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
            .collect()
    }
}

//! Hand-rolled `#[derive(Serialize)]` / `#[derive(Deserialize)]`.
//!
//! This crate is part of the offline stand-in for serde (see
//! `stubs/README.md`). It parses the deriving item directly from the
//! `proc_macro` token stream — no `syn`/`quote` — which is enough for the
//! shapes this repository actually uses: non-generic named structs, tuple
//! structs, unit structs, and enums with unit / tuple / struct variants.
//! Serde attributes (`#[serde(...)]`) and generic parameters are rejected
//! with a compile error rather than silently mis-handled.

#![warn(missing_docs)]

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Shape {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    shape: Shape,
}

#[derive(Debug)]
enum Item {
    Struct {
        name: String,
        shape: Shape,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// Derives `serde::Serialize` (value-tree flavor) for the item.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("generated Serialize impl parses")
}

/// Derives `serde::Deserialize` (value-tree flavor) for the item.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("generated Deserialize impl parses")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

/// Consumes an attribute body, rejecting `#[serde(...)]`: this stub does not
/// implement serde attributes, and skipping one silently would produce
/// wrong serialization instead of a build failure.
fn consume_attribute(tok: Option<TokenTree>) {
    if let Some(TokenTree::Group(g)) = tok {
        if let Some(TokenTree::Ident(id)) = g.stream().into_iter().next() {
            if id.to_string() == "serde" {
                panic!(
                    "serde stub derive: #[serde(...)] attributes are not supported \
                     (see stubs/README.md)"
                );
            }
        }
    }
}

fn parse_item(input: TokenStream) -> Item {
    let mut toks = input.into_iter().peekable();

    // Skip outer attributes and visibility.
    loop {
        match toks.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                toks.next();
                // The bracketed attribute body.
                consume_attribute(toks.next());
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                toks.next();
                // Optional `(crate)` / `(super)` restriction.
                if let Some(TokenTree::Group(g)) = toks.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        toks.next();
                    }
                }
            }
            _ => break,
        }
    }

    let kind = match toks.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde stub derive: expected `struct` or `enum`, got {other:?}"),
    };
    let name = match toks.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde stub derive: expected item name, got {other:?}"),
    };
    if let Some(TokenTree::Punct(p)) = toks.peek() {
        if p.as_char() == '<' {
            panic!("serde stub derive: generic type `{name}` is not supported");
        }
    }

    match kind.as_str() {
        "struct" => {
            let shape = match toks.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Shape::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Shape::Tuple(count_tuple_fields(g.stream()))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::Unit,
                other => panic!("serde stub derive: unexpected struct body {other:?}"),
            };
            Item::Struct { name, shape }
        }
        "enum" => {
            let body = match toks.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                other => panic!("serde stub derive: expected enum body, got {other:?}"),
            };
            Item::Enum {
                name,
                variants: parse_variants(body),
            }
        }
        other => panic!("serde stub derive: cannot derive for `{other}` items"),
    }
}

/// Parses `name: Type, ...` (with attributes / visibility) into field names.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut toks = stream.into_iter().peekable();
    loop {
        // Skip attributes and visibility in front of the field.
        loop {
            match toks.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    toks.next();
                    consume_attribute(toks.next());
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    toks.next();
                    if let Some(TokenTree::Group(g)) = toks.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            toks.next();
                        }
                    }
                }
                _ => break,
            }
        }
        let Some(tok) = toks.next() else { break };
        let TokenTree::Ident(field) = tok else {
            panic!("serde stub derive: expected field name, got {tok:?}");
        };
        fields.push(field.to_string());
        match toks.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde stub derive: expected `:` after field, got {other:?}"),
        }
        // Consume the type: everything up to a comma at angle-bracket depth 0.
        let mut depth = 0i32;
        loop {
            match toks.peek() {
                None => break,
                Some(TokenTree::Punct(p)) => {
                    match p.as_char() {
                        '<' => depth += 1,
                        '>' => depth -= 1,
                        ',' if depth == 0 => {
                            toks.next();
                            break;
                        }
                        _ => {}
                    }
                    toks.next();
                }
                Some(_) => {
                    toks.next();
                }
            }
        }
    }
    fields
}

/// Counts the fields of a tuple struct / tuple variant.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut count = 0usize;
    let mut depth = 0i32;
    let mut saw_tokens = false;
    let mut last_was_sep = false;
    for tok in stream {
        saw_tokens = true;
        last_was_sep = false;
        if let TokenTree::Punct(p) = &tok {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => {
                    count += 1;
                    last_was_sep = true;
                }
                _ => {}
            }
        }
    }
    // `(A, B)` has one comma but two fields; a trailing comma as in `(A,)`
    // separates nothing and must not count.
    if last_was_sep {
        count
    } else if saw_tokens {
        count + 1
    } else {
        0
    }
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut toks = stream.into_iter().peekable();
    loop {
        // Skip attributes in front of the variant.
        while let Some(TokenTree::Punct(p)) = toks.peek() {
            if p.as_char() == '#' {
                toks.next();
                consume_attribute(toks.next());
            } else {
                break;
            }
        }
        let Some(tok) = toks.next() else { break };
        let TokenTree::Ident(name) = tok else {
            panic!("serde stub derive: expected variant name, got {tok:?}");
        };
        let shape = match toks.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                toks.next();
                Shape::Named(fields)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                toks.next();
                Shape::Tuple(n)
            }
            _ => Shape::Unit,
        };
        variants.push(Variant {
            name: name.to_string(),
            shape,
        });
        // Consume a possible discriminant and the separating comma.
        loop {
            match toks.next() {
                None => break,
                Some(TokenTree::Punct(p)) if p.as_char() == ',' => break,
                Some(_) => {}
            }
        }
    }
    variants
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::Struct { name, shape } => {
            let body = match shape {
                Shape::Unit => "::serde::Value::Null".to_string(),
                Shape::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
                Shape::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                        .collect();
                    format!("::serde::Value::Array(vec![{}])", items.join(", "))
                }
                Shape::Named(fields) => {
                    let items: Vec<String> = fields
                        .iter()
                        .map(|f| {
                            format!(
                                "(\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f}))"
                            )
                        })
                        .collect();
                    format!("::serde::Value::Object(vec![{}])", items.join(", "))
                }
            };
            format!(
                "impl ::serde::Serialize for {name} {{\n                    fn to_value(&self) -> ::serde::Value {{ {body} }}\n                }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vn = &v.name;
                    match &v.shape {
                        Shape::Unit => format!(
                            "{name}::{vn} => ::serde::Value::String(\"{vn}\".to_string()),"
                        ),
                        Shape::Tuple(1) => format!(
                            "{name}::{vn}(__f0) => ::serde::Value::Object(vec![(\"{vn}\".to_string(), ::serde::Serialize::to_value(__f0))]),"
                        ),
                        Shape::Tuple(n) => {
                            let binds: Vec<String> =
                                (0..*n).map(|i| format!("__f{i}")).collect();
                            let items: Vec<String> = (0..*n)
                                .map(|i| format!("::serde::Serialize::to_value(__f{i})"))
                                .collect();
                            format!(
                                "{name}::{vn}({}) => ::serde::Value::Object(vec![(\"{vn}\".to_string(), ::serde::Value::Array(vec![{}]))]),",
                                binds.join(", "),
                                items.join(", ")
                            )
                        }
                        Shape::Named(fields) => {
                            let binds = fields.join(", ");
                            let items: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "(\"{f}\".to_string(), ::serde::Serialize::to_value({f}))"
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vn} {{ {binds} }} => ::serde::Value::Object(vec![(\"{vn}\".to_string(), ::serde::Value::Object(vec![{}]))]),",
                                items.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n                    fn to_value(&self) -> ::serde::Value {{ match self {{ {} }} }}\n                }}",
                arms.join("\n")
            )
        }
    }
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::Struct { name, shape } => {
            let body = match shape {
                Shape::Unit => format!("::std::result::Result::Ok({name})"),
                Shape::Tuple(1) => format!(
                    "::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))"
                ),
                Shape::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|i| {
                            format!("::serde::Deserialize::from_value(__arr.get({i}).ok_or_else(|| ::serde::Error::custom(\"missing tuple element {i} for {name}\"))?)?")
                        })
                        .collect();
                    format!(
                        "let __arr = __v.as_array().ok_or_else(|| ::serde::Error::custom(\"expected array for tuple struct {name}\"))?;\n                         ::std::result::Result::Ok({name}({}))",
                        items.join(", ")
                    )
                }
                Shape::Named(fields) => {
                    let items: Vec<String> = fields
                        .iter()
                        .map(|f| {
                            format!(
                                "{f}: ::serde::Deserialize::from_value(::serde::Value::expect_field(__obj, \"{f}\", \"{name}\")?)?,"
                            )
                        })
                        .collect();
                    format!(
                        "let __obj = __v.as_object().ok_or_else(|| ::serde::Error::custom(\"expected object for struct {name}\"))?;\n                         ::std::result::Result::Ok({name} {{ {} }})",
                        items.join("\n")
                    )
                }
            };
            format!(
                "impl ::serde::Deserialize for {name} {{\n                    fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{ {body} }}\n                }}"
            )
        }
        Item::Enum { name, variants } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|v| matches!(v.shape, Shape::Unit))
                .map(|v| {
                    let vn = &v.name;
                    format!("\"{vn}\" => return ::std::result::Result::Ok({name}::{vn}),")
                })
                .collect();
            let data_arms: Vec<String> = variants
                .iter()
                .filter_map(|v| {
                    let vn = &v.name;
                    match &v.shape {
                        Shape::Unit => None,
                        Shape::Tuple(1) => Some(format!(
                            "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}(::serde::Deserialize::from_value(__inner)?)),"
                        )),
                        Shape::Tuple(n) => {
                            let items: Vec<String> = (0..*n)
                                .map(|i| {
                                    format!("::serde::Deserialize::from_value(__arr.get({i}).ok_or_else(|| ::serde::Error::custom(\"missing tuple element {i} for {name}::{vn}\"))?)?")
                                })
                                .collect();
                            Some(format!(
                                "\"{vn}\" => {{ let __arr = __inner.as_array().ok_or_else(|| ::serde::Error::custom(\"expected array for {name}::{vn}\"))?; ::std::result::Result::Ok({name}::{vn}({})) }}",
                                items.join(", ")
                            ))
                        }
                        Shape::Named(fields) => {
                            let items: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    format!(
                                        "{f}: ::serde::Deserialize::from_value(::serde::Value::expect_field(__fields, \"{f}\", \"{name}::{vn}\")?)?,"
                                    )
                                })
                                .collect();
                            Some(format!(
                                "\"{vn}\" => {{ let __fields = __inner.as_object().ok_or_else(|| ::serde::Error::custom(\"expected object for {name}::{vn}\"))?; ::std::result::Result::Ok({name}::{vn} {{ {} }}) }}",
                                items.join("\n")
                            ))
                        }
                    }
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n                    fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n                        if let ::std::option::Option::Some(__s) = __v.as_str() {{\n                            match __s {{ {} _ => return ::std::result::Result::Err(::serde::Error::custom(format!(\"unknown unit variant `{{__s}}` for {name}\"))) }}\n                        }}\n                        let __obj = __v.as_object().ok_or_else(|| ::serde::Error::custom(\"expected string or object for enum {name}\"))?;\n                        let (__tag, __inner) = match __obj.first() {{\n                            ::std::option::Option::Some((t, i)) if __obj.len() == 1 => (t.as_str(), i),\n                            _ => return ::std::result::Result::Err(::serde::Error::custom(\"expected single-key object for enum {name}\")),\n                        }};\n                        match __tag {{ {} _ => ::std::result::Result::Err(::serde::Error::custom(format!(\"unknown variant `{{__tag}}` for {name}\"))) }}\n                    }}\n                }}",
                unit_arms.join("\n"),
                data_arms.join("\n")
            )
        }
    }
}

//! # RPPM — Rapid Performance Prediction of Multithreaded Workloads
//!
//! Umbrella crate for the RPPM reproduction (De Pestel, Van den Steen,
//! Akram & Eeckhout, ISPASS 2019): a mechanistic analytical model that
//! profiles a multi-threaded workload **once**, collecting only
//! microarchitecture-independent characteristics, and then predicts its
//! execution time on **any** multicore configuration.
//!
//! The pieces (each re-exported as a module here):
//!
//! * [`trace`] — workload IR, generator DSL, machine configurations
//!   (Table IV design points).
//! * [`workloads`] — synthetic Rodinia + Parsec benchmark analogs.
//! * [`profiler`] — the one-time profiler (instruction mix, ILP/MLP
//!   structure, branch entropy, reuse distances, synchronization events).
//! * [`statstack`] — the StatStack cache model with the multi-threaded
//!   extension (shared caches, coherence).
//! * [`branch_model`] — entropy-based branch misprediction prediction.
//! * [`core`] — the RPPM model: Equation 1 + Algorithm 2, the MAIN/CRIT
//!   baselines, bottlegraphs, design-space exploration.
//! * [`sim`] — the detailed multicore simulator used as golden reference.
//!
//! # Quickstart
//!
//! The [`Session`] facade is the front door: it owns the profile-once
//! cache, so however many configurations (or callers) ask about a
//! workload, it is profiled exactly once.
//!
//! ```
//! use rppm::prelude::*;
//!
//! // 1. Open a session (it owns the shared profile-once cache).
//! let session = Session::builder().build();
//!
//! // 2. Pick a workload and profile it once (microarchitecture-
//! //    independent; also works for session.import("trace.rpt") files).
//! let workload = session.workload("hotspot")?.scale(0.02).seed(1);
//! let profile = workload.profile();
//!
//! // 3. Predict any machine configuration from the one profile...
//! let prediction = profile.predict(&DesignPoint::Base.config());
//! let sweep = profile.predict_sweep(
//!     &DesignPoint::ALL.iter().map(|d| d.config()).collect::<Vec<_>>());
//! assert_eq!(sweep.len(), 5);
//!
//! // ...profile once: re-opening the same workload hits the cache.
//! let again = session.workload("hotspot")?.scale(0.02).seed(1).profile();
//! assert_eq!(session.profiles_collected(), 1, "one profiling run");
//! assert_eq!(session.cache_hits(), 1, "second .profile() was a cache hit");
//!
//! // 4. ...and compare against detailed simulation when desired.
//! let reference = profile.simulate(&DesignPoint::Base.config());
//! let err = abs_pct_error(prediction.total_cycles, reference.total_cycles);
//! assert!(err < 0.5, "prediction within 50% of simulation, got {:.0}%", err * 100.0);
//! # Ok::<(), rppm::Error>(())
//! ```
//!
//! The stateless free functions (`profile`, `predict`, `simulate`) remain
//! in the [`prelude`] for one-shot use.

#![warn(missing_docs)]

pub mod api;
pub mod docs;

pub use api::{Error, PreparedHandle, ProfileHandle, Session, SessionBuilder, WorkloadHandle};
pub use rppm_profiler::CacheBudget;

pub use rppm_branch_model as branch_model;
pub use rppm_core as core;
pub use rppm_profiler as profiler;
pub use rppm_sim as sim;
pub use rppm_statstack as statstack;
pub use rppm_trace as trace;
pub use rppm_workloads as workloads;

/// Convenient glob-import surface for the common workflow.
pub mod prelude {
    pub use crate::api::{Error, ProfileHandle, Session, SessionBuilder, WorkloadHandle};
    pub use rppm_core::{
        abs_pct_error, predict, predict_crit, predict_main, Bottlegraph, Prediction,
    };
    pub use rppm_profiler::{profile, ApplicationProfile};
    pub use rppm_sim::{simulate, SimResult};
    pub use rppm_trace::{
        read_machine, BlockSpec, DesignPoint, MachineConfig, MachineConfigBuilder, Program,
        ProgramBuilder,
    };
    pub use rppm_workloads::Params as WorkloadParams;
}

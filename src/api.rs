//! The session facade: RPPM's *profile once, predict many* workflow as a
//! first-class API.
//!
//! A [`Session`] owns a thread-safe profile-once cache
//! ([`rppm_profiler::ProfileCache`]). Workloads enter the session from the
//! benchmark catalog ([`Session::workload`]), from a trace file in either
//! on-disk container ([`Session::import`], format auto-detected by magic
//! bytes), or as an in-memory [`Program`] ([`Session::program`]); each
//! yields a [`WorkloadHandle`]. Calling [`WorkloadHandle::profile`]
//! collects the microarchitecture-independent profile **at most once per
//! session** — every further call, from any thread, is a cache hit — and
//! returns a [`ProfileHandle`] that predicts any number of machine
//! configurations ([`ProfileHandle::predict`], or the parallel
//! [`ProfileHandle::predict_sweep`] for design-space exploration).
//!
//! Everything fallible returns the unified [`Error`], whose variants keep
//! their underlying causes reachable through
//! [`std::error::Error::source`].
//!
//! ```
//! use rppm::{Session, trace::DesignPoint};
//!
//! let session = Session::builder().build();
//! let workload = session.workload("lud")?.scale(0.02).seed(7);
//!
//! let profile = workload.profile();           // profiled here, once
//! let base = profile.predict(&DesignPoint::Base.config());
//! let big = profile.predict(&DesignPoint::Big.config());
//! assert!(base.total_cycles > big.total_cycles);
//! assert_eq!(session.profiles_collected(), 1);
//! # Ok::<(), rppm::Error>(())
//! ```
//!
//! The stateless free functions ([`profile()`](crate::profiler::profile()),
//! [`predict()`](crate::core::predict()), [`simulate()`](crate::sim::simulate()))
//! remain available for one-shot use; the session is those functions plus
//! the amortization contract.

use rppm_core::{parallel_map, Prediction, PreparedProfile};
use rppm_profiler::{ApplicationProfile, CacheBudget, ProfileCache, ProfileKey, ProfiledWorkload};
use rppm_sim::{simulate, SimProfile, SimResult};
use rppm_trace::{program_fingerprint, MachineConfig, Program, ProgramError, TraceFileError};
use rppm_workloads::{Benchmark, Params};
use std::path::Path;
use std::sync::Arc;

/// Unified error type for the `rppm` API surface.
///
/// Every variant preserves its underlying cause: [`Error::Trace`] wraps the
/// typed trace-file diagnostics, [`Error::InvalidProgram`] the structural
/// program validation, and [`Error::Io`] raw I/O failures — all reachable
/// through [`std::error::Error::source`], so callers can render either the
/// one-line summary (`Display`) or the full chain.
#[derive(Debug)]
#[non_exhaustive]
pub enum Error {
    /// The named workload is not in the benchmark catalog.
    UnknownWorkload {
        /// The name that failed to resolve.
        name: String,
    },
    /// Importing or exporting a trace file failed (I/O, bad magic, schema
    /// mismatch, corruption, ...).
    Trace(TraceFileError),
    /// A program violates structural invariants (orphan threads,
    /// unbalanced locks, ...).
    InvalidProgram(ProgramError),
    /// An I/O operation outside the trace containers failed.
    Io {
        /// The path being accessed.
        path: std::path::PathBuf,
        /// The underlying I/O error.
        source: std::io::Error,
    },
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::UnknownWorkload { name } => write!(
                f,
                "unknown workload `{name}` (the catalog has {} benchmarks; \
                 see rppm::workloads::all())",
                rppm_workloads::all().len()
            ),
            Error::Trace(e) => write!(f, "{e}"),
            Error::InvalidProgram(e) => write!(f, "invalid program: {e}"),
            Error::Io { path, source } => {
                write!(f, "cannot access `{}`: {source}", path.display())
            }
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::UnknownWorkload { .. } => None,
            Error::Trace(e) => Some(e),
            Error::InvalidProgram(e) => Some(e),
            Error::Io { source, .. } => Some(source),
        }
    }
}

impl From<TraceFileError> for Error {
    fn from(e: TraceFileError) -> Self {
        Error::Trace(e)
    }
}

impl From<ProgramError> for Error {
    fn from(e: ProgramError) -> Self {
        Error::InvalidProgram(e)
    }
}

/// Configures and creates a [`Session`].
#[derive(Debug, Clone)]
pub struct SessionBuilder {
    params: Params,
    jobs: usize,
    budget: CacheBudget,
}

impl SessionBuilder {
    /// Default generation parameters for catalog workloads opened through
    /// the session (each [`WorkloadHandle`] can override them with
    /// [`WorkloadHandle::scale`] / [`WorkloadHandle::seed`]).
    pub fn params(mut self, params: Params) -> Self {
        self.params = params;
        self
    }

    /// Worker threads for parallel sweeps ([`ProfileHandle::predict_sweep`],
    /// [`ProfileHandle::simulate_sweep`]). Defaults to one per core.
    pub fn jobs(mut self, jobs: usize) -> Self {
        self.jobs = jobs.max(1);
        self
    }

    /// Memory budget for the session's profile cache. The default is
    /// [`CacheBudget::unbounded`] — the historical behaviour, where every
    /// profile ever collected stays resident. Long-lived callers (e.g.
    /// `rppm serve`) should cap the cache by entry count and/or
    /// approximate bytes; least-recently-used resident profiles are then
    /// evicted at insert time, while in-flight profiling runs are never
    /// evicted, so the profile-once coalescing contract is unaffected.
    pub fn cache_budget(mut self, budget: CacheBudget) -> Self {
        self.budget = budget;
        self
    }

    /// Builds the session.
    pub fn build(self) -> Session {
        Session {
            cache: Arc::new(ProfileCache::with_budget(self.budget)),
            params: self.params,
            jobs: self.jobs,
        }
    }
}

impl Default for SessionBuilder {
    fn default() -> Self {
        SessionBuilder {
            params: Params::full(),
            jobs: rppm_core::default_jobs(),
            budget: CacheBudget::unbounded(),
        }
    }
}

/// A profile-once session: the owner of the shared [`ProfileCache`].
///
/// Cheap to clone conceptually — hand out [`WorkloadHandle`]s freely; they
/// keep the cache alive via [`Arc`] and may be profiled from any thread.
#[derive(Debug)]
pub struct Session {
    cache: Arc<ProfileCache>,
    params: Params,
    jobs: usize,
}

impl Session {
    /// Starts configuring a session.
    pub fn builder() -> SessionBuilder {
        SessionBuilder::default()
    }

    /// A session with default settings.
    pub fn new() -> Session {
        Session::builder().build()
    }

    /// Opens a catalog workload by name.
    ///
    /// # Errors
    ///
    /// [`Error::UnknownWorkload`] if `name` is not in the catalog.
    pub fn workload(&self, name: &str) -> Result<WorkloadHandle, Error> {
        let bench = rppm_workloads::by_name(name).ok_or_else(|| Error::UnknownWorkload {
            name: name.to_string(),
        })?;
        Ok(self.handle(Source::Catalog {
            bench,
            params: self.params,
        }))
    }

    /// Imports the trace file at `path` as a workload. The container
    /// format (JSON interchange or `RPT1` binary) is auto-detected by
    /// magic bytes; the trace is cached by content fingerprint, so the
    /// same trace imported twice — even once per container format — is
    /// profiled once.
    ///
    /// # Errors
    ///
    /// [`Error::Trace`] on any import failure.
    pub fn import(&self, path: impl AsRef<Path>) -> Result<WorkloadHandle, Error> {
        let program = rppm_trace::read_program_any(path)?;
        Ok(self.fixed(Arc::new(program)))
    }

    /// Adopts an in-memory program (e.g. built with
    /// [`rppm_trace::ProgramBuilder`]) as a workload, validating it first.
    /// Like imports, it is cached by content fingerprint.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidProgram`] if the program violates structural
    /// invariants.
    pub fn program(&self, program: Program) -> Result<WorkloadHandle, Error> {
        program.validate()?;
        Ok(self.fixed(Arc::new(program)))
    }

    /// Number of profiling runs this session has performed — the "once"
    /// in profile once, predict many.
    pub fn profiles_collected(&self) -> usize {
        self.cache.profiles_collected()
    }

    /// Profile requests served from the cache instead of re-profiling.
    pub fn cache_hits(&self) -> usize {
        self.cache.hits()
    }

    /// Profiles evicted to stay within the session's [`CacheBudget`].
    /// Always zero for the default unbounded budget.
    pub fn cache_evictions(&self) -> usize {
        self.cache.evictions()
    }

    /// The shared profile cache (e.g. to hand to an
    /// `rppm_bench::ExperimentPlan` so harness runs and session callers
    /// amortize the same profiles).
    pub fn cache(&self) -> &Arc<ProfileCache> {
        &self.cache
    }

    fn fixed(&self, program: Arc<Program>) -> WorkloadHandle {
        let fingerprint = program_fingerprint(&program);
        self.handle(Source::Fixed {
            program,
            fingerprint,
        })
    }

    fn handle(&self, source: Source) -> WorkloadHandle {
        WorkloadHandle {
            cache: Arc::clone(&self.cache),
            jobs: self.jobs,
            source,
        }
    }
}

impl Default for Session {
    fn default() -> Self {
        Session::new()
    }
}

/// Where a workload handle's program comes from.
#[derive(Debug, Clone)]
enum Source {
    /// A catalog generator plus its generation parameters.
    Catalog { bench: Benchmark, params: Params },
    /// A fixed dynamic stream (imported trace or adopted program),
    /// identified by content fingerprint.
    Fixed {
        program: Arc<Program>,
        fingerprint: u64,
    },
}

/// A workload opened in a [`Session`], ready to be profiled once.
#[derive(Debug, Clone)]
pub struct WorkloadHandle {
    cache: Arc<ProfileCache>,
    jobs: usize,
    source: Source,
}

impl WorkloadHandle {
    /// Sets the generation work scale. Only generated (catalog) workloads
    /// scale; a fixed trace's dynamic stream is immutable, so this is a
    /// no-op for imported workloads.
    pub fn scale(mut self, scale: f64) -> Self {
        if let Source::Catalog { params, .. } = &mut self.source {
            params.scale = scale;
        }
        self
    }

    /// Sets the generation seed. Like [`WorkloadHandle::scale`], a no-op
    /// for fixed traces.
    pub fn seed(mut self, seed: u64) -> Self {
        if let Source::Catalog { params, .. } = &mut self.source {
            params.seed = seed;
        }
        self
    }

    /// The workload's name.
    pub fn name(&self) -> &str {
        match &self.source {
            Source::Catalog { bench, .. } => bench.name,
            Source::Fixed { program, .. } => &program.name,
        }
    }

    /// The cache key this workload profiles under.
    fn key(&self) -> ProfileKey {
        match &self.source {
            Source::Catalog { bench, params } => {
                ProfileKey::generated(bench.name, params.scale, params.seed)
            }
            Source::Fixed { fingerprint, .. } => ProfileKey::fingerprint(*fingerprint),
        }
    }

    /// Builds and profiles the workload **at most once per session** —
    /// every further call (same scale/seed, or same trace content, from
    /// any thread) returns the cached profile. The returned
    /// [`ProfileHandle`] carries the shared [`Arc`]s.
    pub fn profile(&self) -> ProfileHandle {
        let key = self.key();
        let workload = match &self.source {
            Source::Catalog { bench, params } => self
                .cache
                .get_or_profile(key, || Arc::new(bench.build(params))),
            Source::Fixed { program, .. } => self.cache.get_or_profile(key, || Arc::clone(program)),
        };
        ProfileHandle {
            workload,
            jobs: self.jobs,
        }
    }

    /// Returns the profile only if it is already resident in the cache —
    /// the non-blocking fast path for services that must not stall a
    /// request behind a profiling run. Refreshes the entry's LRU position
    /// but never profiles and never counts toward the hit/miss statistics;
    /// `None` means a [`WorkloadHandle::profile`] call would have to do
    /// (or join) a profiling run.
    pub fn profile_if_cached(&self) -> Option<ProfileHandle> {
        self.cache.peek(&self.key()).map(|workload| ProfileHandle {
            workload,
            jobs: self.jobs,
        })
    }
}

/// A profiled workload: one microarchitecture-independent profile, any
/// number of predictions.
#[derive(Debug, Clone)]
pub struct ProfileHandle {
    workload: ProfiledWorkload,
    jobs: usize,
}

impl ProfileHandle {
    /// The cached profile artifact (serializable via
    /// [`ApplicationProfile::to_json`]).
    pub fn profile(&self) -> &Arc<ApplicationProfile> {
        &self.workload.profile
    }

    /// The materialized program (what the golden-reference simulator
    /// consumes).
    pub fn program(&self) -> &Arc<Program> {
        &self.workload.program
    }

    /// Predicts execution on one machine configuration (Equation 1 +
    /// Algorithm 2) — microseconds of model time, no re-profiling.
    pub fn predict(&self, config: &MachineConfig) -> Prediction {
        rppm_core::predict(&self.workload.profile, config)
    }

    /// The MAIN baseline prediction (cycles).
    pub fn predict_main(&self, config: &MachineConfig) -> f64 {
        rppm_core::predict_main(&self.workload.profile, config)
    }

    /// The CRIT baseline prediction (cycles).
    pub fn predict_crit(&self, config: &MachineConfig) -> f64 {
        rppm_core::predict_crit(&self.workload.profile, config)
    }

    /// Predicts every configuration of a design space from the one
    /// profile, fanned out over the session's worker threads. Results are
    /// in `configs` order regardless of the worker count.
    pub fn predict_sweep(&self, configs: &[MachineConfig]) -> Vec<Prediction> {
        parallel_map(self.jobs, configs.len(), |i| self.predict(&configs[i]))
    }

    /// Precomputes everything about this profile that does not depend on
    /// the machine configuration (StatStack models, ILP/MLP interpolation
    /// tables, epoch deduplication), returning a [`PreparedHandle`] whose
    /// per-configuration evaluation is an order of magnitude cheaper than
    /// [`ProfileHandle::predict`] — the entry point for million-point
    /// design-space sweeps.
    pub fn prepared(&self) -> PreparedHandle {
        PreparedHandle {
            prepared: Arc::new(PreparedProfile::new(Arc::clone(&self.workload.profile))),
            jobs: self.jobs,
        }
    }

    /// Predicts total cycles for every configuration through a freshly
    /// prepared profile (see [`PreparedHandle::predict_batch`]). When
    /// evaluating more than one batch, prepare once with
    /// [`ProfileHandle::prepared`] and reuse the handle.
    pub fn predict_batch(&self, configs: &[MachineConfig]) -> Vec<f64> {
        self.prepared().predict_batch(configs)
    }

    /// Golden-reference detailed simulation (slow; for validation).
    pub fn simulate(&self, config: &MachineConfig) -> SimResult {
        simulate(&self.workload.program, config)
    }

    /// Golden-reference simulation with the simulator's self-profiling
    /// probe attached: returns the result plus the engine's own execution
    /// profile (op-class frequencies, dynamic op-pair histogram, sync mix,
    /// dispatch/fusion statistics). Timing is bit-identical to
    /// [`ProfileHandle::simulate`] — the probe only observes.
    pub fn simulate_profiled(&self, config: &MachineConfig) -> (SimResult, SimProfile) {
        rppm_sim::simulate_profiled(&self.workload.program, config)
    }

    /// Simulates every configuration of a design space, fanned out over
    /// the session's worker threads, in `configs` order.
    pub fn simulate_sweep(&self, configs: &[MachineConfig]) -> Vec<SimResult> {
        parallel_map(self.jobs, configs.len(), |i| self.simulate(&configs[i]))
    }
}

/// A profile with all configuration-independent work precomputed: the
/// fast path for design-space exploration.
///
/// Obtained from [`ProfileHandle::prepared`]. Every prediction it makes is
/// **bit-identical** to the corresponding [`ProfileHandle`] call — the
/// precompute/evaluate split changes cost, never results.
#[derive(Debug, Clone)]
pub struct PreparedHandle {
    prepared: Arc<PreparedProfile>,
    jobs: usize,
}

impl PreparedHandle {
    /// The underlying prepared profile (e.g. to hand to
    /// [`rppm_core::sweep`] / [`rppm_core::find_best`]).
    pub fn inner(&self) -> &Arc<PreparedProfile> {
        &self.prepared
    }

    /// Predicts one configuration; bit-identical to
    /// [`ProfileHandle::predict`].
    pub fn predict(&self, config: &MachineConfig) -> Prediction {
        self.prepared.predict(config)
    }

    /// The MAIN baseline (cycles); bit-identical to
    /// [`ProfileHandle::predict_main`].
    pub fn predict_main(&self, config: &MachineConfig) -> f64 {
        self.prepared.predict_main(config)
    }

    /// The CRIT baseline (cycles); bit-identical to
    /// [`ProfileHandle::predict_crit`].
    pub fn predict_crit(&self, config: &MachineConfig) -> f64 {
        self.prepared.predict_crit(config)
    }

    /// Predicts total cycles for every configuration, chunked over the
    /// session's worker threads with one batched Equation-1 evaluator per
    /// worker. Results are in `configs` order, independent of the worker
    /// count, and each equals the corresponding
    /// `predict(config).total_cycles` bit for bit.
    pub fn predict_batch(&self, configs: &[MachineConfig]) -> Vec<f64> {
        let n = configs.len();
        if n == 0 {
            return Vec::new();
        }
        let jobs = self.jobs.clamp(1, n);
        let chunk = n.div_ceil(jobs);
        let per_worker: Vec<Vec<f64>> = parallel_map(jobs, jobs, |w| {
            let lo = w * chunk;
            let hi = ((w + 1) * chunk).min(n);
            let mut batch = self.prepared.batched();
            let mut out = Vec::with_capacity(hi.saturating_sub(lo));
            for config in &configs[lo..hi] {
                out.push(batch.eval(config));
            }
            out
        });
        per_worker.concat()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rppm_trace::DesignPoint;

    #[test]
    fn unknown_workload_is_a_typed_error() {
        let session = Session::new();
        let err = session.workload("nosuch").unwrap_err();
        assert!(matches!(err, Error::UnknownWorkload { ref name } if name == "nosuch"));
        assert!(err.to_string().contains("nosuch"));
    }

    #[test]
    fn sweep_matches_sequential_predictions() {
        let session = Session::builder().jobs(4).build();
        let profile = session
            .workload("nn")
            .expect("catalog")
            .scale(0.02)
            .seed(3)
            .profile();
        let configs: Vec<_> = DesignPoint::ALL.iter().map(|d| d.config()).collect();
        let sweep = profile.predict_sweep(&configs);
        assert_eq!(sweep.len(), configs.len());
        for (p, c) in sweep.iter().zip(&configs) {
            assert_eq!(
                p.total_cycles.to_bits(),
                profile.predict(c).total_cycles.to_bits()
            );
        }
        assert_eq!(session.profiles_collected(), 1);
    }

    #[test]
    fn bounded_session_evicts_and_serves_fast_path() {
        let session = Session::builder()
            .jobs(1)
            .cache_budget(CacheBudget::entries(1))
            .build();
        let a = session.workload("nn").expect("catalog").scale(0.02).seed(1);
        let b = session.workload("nn").expect("catalog").scale(0.02).seed(2);
        assert!(a.profile_if_cached().is_none(), "cold cache has nothing");
        let first = a.profile();
        assert!(a.profile_if_cached().is_some(), "resident after profiling");
        b.profile(); // budget of one entry: this evicts `a`
        assert_eq!(session.cache_evictions(), 1);
        assert!(a.profile_if_cached().is_none(), "evicted entry not served");
        let again = a.profile(); // re-profiles, bit-identical
        assert_eq!(session.profiles_collected(), 3);
        assert_eq!(first.profile().to_json(), again.profile().to_json());
    }

    #[test]
    fn prepared_batch_is_bit_identical_to_scalar() {
        let session = Session::builder().jobs(3).build();
        let profile = session
            .workload("nn")
            .expect("catalog")
            .scale(0.02)
            .seed(3)
            .profile();
        let configs: Vec<_> = DesignPoint::ALL.iter().map(|d| d.config()).collect();
        let prepared = profile.prepared();
        let batch = prepared.predict_batch(&configs);
        assert_eq!(batch.len(), configs.len());
        for (cycles, c) in batch.iter().zip(&configs) {
            assert_eq!(cycles.to_bits(), profile.predict(c).total_cycles.to_bits());
        }
        assert_eq!(
            prepared.predict_main(&configs[0]).to_bits(),
            profile.predict_main(&configs[0]).to_bits()
        );
        assert!(profile.predict_batch(&configs[..1])[0] > 0.0);
        assert!(prepared.predict_batch(&[]).is_empty());
    }
}

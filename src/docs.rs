//! Machine-readable JSON documents shared by the `rppm` CLI and the
//! `rppm serve` HTTP service.
//!
//! Both front-ends emit the *same* documents — `rppm dse --json` and the
//! service's `/dse` endpoint are byte-identical for identical inputs, and
//! likewise for the prediction sweep twins. Keeping the builders here (the
//! only crate both depend on) is what makes that a structural guarantee
//! instead of a convention.

use rppm_core::{ConfigSpace, DseBest, DsePoint, DseSweep, Prediction};
use rppm_trace::MachineConfig;
use serde_json::Value;

/// One-line human description of a machine configuration, as printed by
/// `rppm dse` (e.g. `4w/192rob @2.00GHz l1=32K l2=512K l3=8M mshr=16
/// bp=8K`).
pub fn describe_config(c: &MachineConfig) -> String {
    format!(
        "{}w/{}rob @{:.2}GHz l1={}K l2={}K l3={}M mshr={} bp={}K",
        c.dispatch_width,
        c.rob_size,
        c.freq_ghz,
        c.l1d.size_bytes >> 10,
        c.l2.size_bytes >> 10,
        c.l3.size_bytes >> 20,
        c.mshrs,
        c.bpred.size_bytes >> 10
    )
}

/// The bound ladder reported by DSE sweeps (the paper's Table V rungs),
/// with `bound` merged in when it is not already a rung. Both `rppm dse`
/// and the service's `/dse` endpoint build their ladder here, so their
/// candidate tables agree rung for rung.
pub fn dse_bounds_ladder(bound: f64) -> Vec<f64> {
    const BOUNDS: [f64; 4] = [0.0, 0.01, 0.03, 0.05];
    let mut bounds = BOUNDS.to_vec();
    if !bounds.iter().any(|b| (b - bound).abs() < 1e-15) {
        bounds.push(bound);
        bounds.sort_by(f64::total_cmp);
    }
    bounds
}

/// JSON object for one evaluated design point.
pub fn dse_point_doc(space: &ConfigSpace, p: &DsePoint) -> Value {
    Value::Object(vec![
        ("index".into(), Value::U64(p.index as u64)),
        (
            "config".into(),
            Value::String(describe_config(&space.config(p.index))),
        ),
        ("seconds".into(), Value::F64(p.seconds)),
        ("area".into(), Value::F64(p.area)),
        ("power".into(), Value::F64(p.power)),
    ])
}

/// The `rppm dse --json` document for a full sweep ([`rppm_core::sweep`]).
pub fn dse_sweep_doc(workload: &str, space: &ConfigSpace, out: &DseSweep) -> Value {
    Value::Object(vec![
        ("workload".into(), Value::String(workload.to_string())),
        ("points".into(), Value::U64(out.points as u64)),
        ("feasible".into(), Value::U64(out.feasible as u64)),
        ("best".into(), dse_point_doc(space, &out.best)),
        (
            "frontier".into(),
            Value::Array(
                out.frontier
                    .iter()
                    .map(|p| dse_point_doc(space, p))
                    .collect(),
            ),
        ),
        (
            "candidates".into(),
            Value::Array(
                out.candidates
                    .iter()
                    .map(|&(b, n)| {
                        Value::Object(vec![
                            ("bound".into(), Value::F64(b)),
                            ("count".into(), Value::U64(n as u64)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// The `rppm dse --best-only --json` document ([`rppm_core::find_best`]).
pub fn dse_best_doc(workload: &str, space: &ConfigSpace, out: &DseBest) -> Value {
    Value::Object(vec![
        ("workload".into(), Value::String(workload.to_string())),
        ("points".into(), Value::U64(out.points as u64)),
        ("feasible".into(), Value::U64(out.feasible as u64)),
        ("pruned".into(), Value::U64(out.pruned as u64)),
        ("bound".into(), Value::F64(out.bound)),
        ("candidates".into(), Value::U64(out.candidates as u64)),
        ("best".into(), dse_point_doc(space, &out.best)),
    ])
}

/// JSON object for one prediction (Equation 1 + Algorithm 2 output).
pub fn prediction_doc(p: &Prediction) -> Value {
    Value::Object(vec![
        ("program".into(), Value::String(p.program.clone())),
        ("config".into(), Value::String(p.config.clone())),
        ("total_cycles".into(), Value::F64(p.total_cycles)),
        ("total_seconds".into(), Value::F64(p.total_seconds)),
        ("threads".into(), Value::U64(p.threads.len() as u64)),
    ])
}

/// Design-point sweep document: one [`prediction_doc`] per labelled
/// configuration, in input order.
pub fn sweep_doc(workload: &str, predictions: &[(String, Prediction)]) -> Value {
    Value::Object(vec![
        ("workload".into(), Value::String(workload.to_string())),
        (
            "sweep".into(),
            Value::Array(
                predictions
                    .iter()
                    .map(|(label, p)| {
                        let mut doc = match prediction_doc(p) {
                            Value::Object(fields) => fields,
                            _ => unreachable!("prediction_doc builds an object"),
                        };
                        doc.insert(0, ("design".into(), Value::String(label.clone())));
                        Value::Object(doc)
                    })
                    .collect(),
            ),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use rppm_trace::DesignPoint;

    #[test]
    fn describe_config_matches_expected_shape() {
        let d = describe_config(&DesignPoint::Base.config());
        assert!(
            d.contains("GHz") && d.contains("l1=") && d.contains("bp="),
            "{d}"
        );
    }

    #[test]
    fn sweep_doc_orders_and_labels() {
        let session = crate::Session::builder().jobs(1).build();
        let profile = session
            .workload("nn")
            .expect("catalog")
            .scale(0.02)
            .seed(1)
            .profile();
        let preds: Vec<(String, Prediction)> = DesignPoint::ALL
            .iter()
            .map(|d| (d.to_string(), profile.predict(&d.config())))
            .collect();
        let doc = serde_json::to_string(&sweep_doc("nn", &preds)).unwrap();
        assert!(doc.starts_with("{\"workload\":\"nn\",\"sweep\":[{\"design\":\"smallest\""));
        assert!(doc.contains("\"total_cycles\""));
    }
}

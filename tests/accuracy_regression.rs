//! Accuracy-regression suite: freshly generated report JSON must match the
//! committed golden baselines (`results/golden/*.json`) within tolerance.
//!
//! Report generation is deterministic and thread-count-independent, so a
//! mismatch means the model, profiler, simulator or workload generators
//! changed behaviour. If the change is intentional, regenerate the
//! baselines with:
//!
//! ```text
//! cargo run --release -p rppm-cli -- golden update
//! ```

use rppm_bench::golden::{self, GOLDEN_RTOL};
use rppm_bench::{ProfileCache, RunCtx};
use serde_json::Value;
use std::path::PathBuf;

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("results")
        .join("golden")
}

#[test]
fn reports_match_golden_baselines() {
    let cache = ProfileCache::new();
    let ctx = RunCtx::new(&cache, 2);
    let mut failures = String::new();
    let mut checked = 0;
    for report in golden::golden_reports(&ctx) {
        let path = golden_dir().join(format!("{}.json", report.name));
        let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "missing golden baseline {} ({e}); regenerate with \
                 `cargo run --release -p rppm-cli -- golden update`",
                path.display()
            )
        });
        let baseline: Value = serde_json::from_str(&text)
            .unwrap_or_else(|e| panic!("{} is not valid JSON: {e}", path.display()));
        let deltas = golden::diff(&baseline, &report.json, GOLDEN_RTOL);
        if !deltas.is_empty() {
            failures.push_str(&golden::render_deltas(report.name, &deltas));
        }
        checked += 1;
    }
    assert_eq!(
        checked, 5,
        "golden set covers fig4, table3, table5, dse, sim_profile"
    );
    assert!(
        failures.is_empty(),
        "accuracy drifted from golden baselines:\n{failures}\
         if intentional, regenerate with \
         `cargo run --release -p rppm-cli -- golden update`"
    );
}

/// The harness itself must catch regressions: perturbing one prediction
/// cell of a real baseline has to produce a delta naming that cell.
#[test]
fn perturbed_prediction_fails_the_diff() {
    let path = golden_dir().join("fig4.json");
    let text = std::fs::read_to_string(&path).expect("committed baseline exists");
    let baseline: Value = serde_json::from_str(&text).expect("baseline parses");

    // Nudge the first benchmark's rppm_error by 0.1% absolute — far below
    // eyeball resolution, far above tolerance.
    let mut perturbed = baseline.clone();
    {
        let Value::Object(entries) = &mut perturbed else {
            panic!("baseline is an object")
        };
        let benches = entries
            .iter_mut()
            .find(|(k, _)| k == "benchmarks")
            .map(|(_, v)| v)
            .expect("baseline has benchmarks");
        let Value::Array(rows) = benches else {
            panic!("benchmarks is an array")
        };
        let Value::Object(row) = &mut rows[0] else {
            panic!("row is an object")
        };
        let cell = row
            .iter_mut()
            .find(|(k, _)| k == "rppm_error")
            .map(|(_, v)| v)
            .expect("row has rppm_error");
        let old = cell.as_f64().expect("numeric cell");
        *cell = Value::F64(old + 0.001);
    }

    let deltas = golden::diff(&baseline, &perturbed, GOLDEN_RTOL);
    assert_eq!(deltas.len(), 1, "exactly the perturbed cell is flagged");
    assert_eq!(deltas[0].path, "$.benchmarks[0].rppm_error");
    assert!(golden::diff(&baseline, &baseline.clone(), GOLDEN_RTOL).is_empty());
}

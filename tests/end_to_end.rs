//! End-to-end integration tests: the full profile → predict → compare
//! pipeline across crates.

use rppm::prelude::*;

fn quick() -> WorkloadParams {
    WorkloadParams {
        scale: 0.05,
        seed: 11,
    }
}

/// RPPM predictions land within a sane band of simulation for every
/// benchmark analog, even at the reduced test scale (the paper-scale
/// accuracy run lives in the rppm-bench harness).
#[test]
fn rppm_tracks_simulation_for_all_benchmarks() {
    let config = DesignPoint::Base.config();
    let mut errors = Vec::new();
    for bench in rppm::workloads::all() {
        let program = bench.build(&quick());
        let prof = profile(&program);
        let sim = simulate(&program, &config);
        let pred = predict(&prof, &config);
        let err = abs_pct_error(pred.total_cycles, sim.total_cycles);
        assert!(
            err < 0.9,
            "{}: prediction {:.0} vs simulation {:.0} ({:.0}% off)",
            bench.name,
            pred.total_cycles,
            sim.total_cycles,
            err * 100.0
        );
        errors.push(err);
    }
    let mean = errors.iter().sum::<f64>() / errors.len() as f64;
    assert!(
        mean < 0.35,
        "suite mean error {:.1}% too high",
        mean * 100.0
    );
}

/// The three models keep the paper's ordering on the suite average:
/// RPPM < CRIT < MAIN (Figure 4's key result).
#[test]
fn model_ordering_matches_figure_4() {
    let config = DesignPoint::Base.config();
    let (mut main_sum, mut crit_sum, mut rppm_sum) = (0.0, 0.0, 0.0);
    for bench in rppm::workloads::all() {
        let program = bench.build(&quick());
        let prof = profile(&program);
        let sim = simulate(&program, &config).total_cycles;
        main_sum += abs_pct_error(predict_main(&prof, &config), sim);
        crit_sum += abs_pct_error(predict_crit(&prof, &config), sim);
        rppm_sum += abs_pct_error(predict(&prof, &config).total_cycles, sim);
    }
    assert!(
        rppm_sum < crit_sum && crit_sum < main_sum,
        "expected RPPM < CRIT < MAIN, got {rppm_sum:.2} / {crit_sum:.2} / {main_sum:.2}"
    );
}

/// One profile predicts every design point: the profile is collected once
/// and is valid across microarchitectures (the paper's headline property).
#[test]
fn profile_once_predict_many_architectures() {
    let bench = rppm::workloads::by_name("cfd").expect("known");
    let program = bench.build(&quick());
    let prof = profile(&program);
    for dp in DesignPoint::ALL {
        let config = dp.config();
        let pred = predict(&prof, &config);
        let sim = simulate(&program, &config);
        let err = abs_pct_error(pred.total_cycles, sim.total_cycles);
        assert!(err < 0.8, "{dp}: error {:.0}%", err * 100.0);
    }
}

/// Profiles survive serialization: for *every* workload, the on-disk JSON
/// artifact predicts bit-identically to the freshly collected in-memory
/// profile on every design point — the "profile once" artifact is
/// trustworthy.
#[test]
fn serialized_profile_predicts_identically_for_all_workloads() {
    for bench in rppm::workloads::all() {
        let program = bench.build(&quick());
        let prof = profile(&program);
        let restored = ApplicationProfile::from_json(&prof.to_json()).expect("round-trip");
        assert_eq!(prof, restored, "{}: lossy profile round-trip", bench.name);
        for dp in DesignPoint::ALL {
            let config = dp.config();
            let a = predict(&prof, &config);
            let b = predict(&restored, &config);
            assert_eq!(
                a.total_cycles.to_bits(),
                b.total_cycles.to_bits(),
                "{} on {dp}: round-tripped profile predicts differently",
                bench.name
            );
        }
    }
}

/// Profiling-run insensitivity (Section III-A): profiles collected from
/// different dynamic executions (different seeds) yield similar
/// predictions.
#[test]
fn predictions_insensitive_to_profiling_run() {
    let bench = rppm::workloads::by_name("hotspot").expect("known");
    let config = DesignPoint::Base.config();
    let p1 = {
        let prog = bench.build(&quick());
        predict(&profile(&prog), &config).total_cycles
    };
    let p2 = {
        let prog = bench.build(&WorkloadParams {
            scale: 0.05,
            seed: 999,
        });
        predict(&profile(&prog), &config).total_cycles
    };
    let diff = (p1 - p2).abs() / p1;
    assert!(
        diff < 0.10,
        "seed changed prediction by {:.1}%",
        diff * 100.0
    );
}

/// The predicted critical thread matters: for an imbalanced workload the
/// symbolic execution must attribute idle time to the fast threads.
#[test]
fn symbolic_execution_finds_waiters() {
    let bench = rppm::workloads::by_name("vips").expect("known");
    let program = bench.build(&quick());
    let prof = profile(&program);
    let pred = predict(&prof, &DesignPoint::Base.config());
    // vips: thread 1 produces, threads 2-3 consume, main mostly joins.
    let producer_wait = pred.threads[1].sync_cycles;
    let consumer_wait = pred.threads[2].sync_cycles;
    assert!(
        consumer_wait > producer_wait,
        "consumers ({consumer_wait:.0}) should wait more than the producer ({producer_wait:.0})"
    );
}

/// Simulator and model agree on which thread is the bottleneck
/// (Figure 6's qualitative claim), checked on a strongly imbalanced case.
#[test]
fn bottleneck_thread_matches_simulation() {
    use rppm::core::Bottlegraph;
    let bench = rppm::workloads::by_name("freqmine").expect("known");
    let program = bench.build(&quick());
    let prof = profile(&program);
    let config = DesignPoint::Base.config();
    let pred = predict(&prof, &config);
    let sim = simulate(&program, &config);
    let g_pred = Bottlegraph::from_intervals(&pred.intervals, pred.total_cycles);
    let g_sim = Bottlegraph::from_intervals(&sim.intervals, sim.total_cycles);
    assert_eq!(
        g_pred.bottleneck().map(|b| b.thread),
        g_sim.bottleneck().map(|b| b.thread),
        "predicted and simulated bottleneck threads disagree"
    );
}

/// Sync-event accounting agrees between the profiler (used for Table III)
/// and the simulator.
#[test]
fn profiler_and_simulator_count_the_same_events() {
    for name in ["fluidanimate", "streamcluster-p", "bodytrack"] {
        let bench = rppm::workloads::by_name(name).expect("known");
        let program = bench.build(&quick());
        let prof = profile(&program);
        let sim = simulate(&program, &DesignPoint::Base.config());
        let (cs, bar, cond) = prof.sync_event_counts();
        assert_eq!(
            cs, sim.sync_events.critical_sections,
            "{name}: critical sections"
        );
        assert_eq!(bar, sim.sync_events.barriers, "{name}: barriers");
        assert_eq!(cond, sim.sync_events.cond_vars, "{name}: cond vars");
    }
}

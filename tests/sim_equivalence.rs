//! Differential property suite for the profile-guided simulator engine:
//! superinstruction fusion, hot-first dispatch, the MRU cache fast path and
//! chunked block expansion must be **bit-identical** to the naive
//! one-op-at-a-time reference engine — the PGO loop changes cost, never
//! results. Random programs (thread counts, op mixes, dependence chains,
//! sync patterns) × random design points, plus every catalog workload, and
//! the self-profiling probe must observe the same op stream from both
//! engines.

use proptest::prelude::*;
use rppm::sim::{
    simulate, simulate_profiled, simulate_reference, simulate_reference_profiled, SimResult,
};
use rppm::trace::{AddressPattern, BlockSpec, DesignPoint, Program, ProgramBuilder};
use rppm::workloads::{by_name, Params};

/// Asserts two simulation results are bit-for-bit identical: end-to-end
/// time, every per-thread timing/counter, intervals and sync events.
fn assert_identical(a: &SimResult, b: &SimResult) {
    prop_assert_eq!(a.total_cycles.to_bits(), b.total_cycles.to_bits());
    prop_assert_eq!(a.total_seconds.to_bits(), b.total_seconds.to_bits());
    prop_assert_eq!(a.threads.len(), b.threads.len());
    for (t, (x, y)) in a.threads.iter().zip(b.threads.iter()).enumerate() {
        prop_assert_eq!(x.start.to_bits(), y.start.to_bits(), "thread {} start", t);
        prop_assert_eq!(
            x.finish.to_bits(),
            y.finish.to_bits(),
            "thread {} finish",
            t
        );
        prop_assert_eq!(x.ops, y.ops, "thread {} ops", t);
        prop_assert_eq!(x.branches, y.branches, "thread {} branches", t);
        prop_assert_eq!(x.mispredicts, y.mispredicts, "thread {} mispredicts", t);
        prop_assert_eq!(x.dram_loads, y.dram_loads, "thread {} dram_loads", t);
        prop_assert_eq!(
            x.cpi.total().to_bits(),
            y.cpi.total().to_bits(),
            "thread {} cpi",
            t
        );
    }
    prop_assert_eq!(&a.sync_events, &b.sync_events);
    prop_assert_eq!(&a.intervals, &b.intervals);
}

/// Builds a random fork-join program: `n_threads` workers, each running
/// `blocks` blocks with a generated op mix, separated by barriers.
#[allow(clippy::too_many_arguments)]
fn random_program(
    n_threads: usize,
    blocks: usize,
    ops: u32,
    seed: u64,
    loads: f64,
    stores: f64,
    branches: f64,
    dep_p: f64,
    dep_mean: f64,
    footprint: u64,
) -> Program {
    let mut b = ProgramBuilder::new("random", n_threads);
    let heap = b.alloc_region(4096);
    let shared = b.alloc_region(64);
    let bar = b.alloc_barrier();
    b.spawn_workers();
    for t in 0..n_threads {
        let mut tb = b.thread(t as u32);
        for k in 0..blocks {
            let spec = BlockSpec::new(ops, seed ^ ((t as u64) << 32) ^ k as u64)
                .loads(loads)
                .stores(stores)
                .branches(branches)
                .deps(dep_p, dep_mean)
                .deps2(dep_p / 2.0)
                .load_chain(0.2)
                .fp(0.15, 0.1)
                .code_footprint(footprint)
                .addr(AddressPattern::stream(heap), 2.0)
                .addr(AddressPattern::random(shared), 1.0);
            tb.block(spec);
            if n_threads > 1 {
                tb.barrier(bar);
            }
        }
    }
    b.join_workers();
    b.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random program × random design point: the fused engine equals the
    /// naive reference bit for bit.
    #[test]
    fn fused_engine_is_bit_identical_to_reference(
        n_threads in 1usize..6,
        blocks in 1usize..4,
        ops in 200u32..3000,
        seed in 0u64..1000,
        loads in 0.0f64..0.5,
        stores in 0.0f64..0.3,
        branches in 0.0f64..0.3,
        dep_p in 0.0f64..0.8,
        dep_mean in 1.0f64..200.0,
        footprint in 1u64..40,
        point in 0usize..5,
    ) {
        let p = random_program(
            n_threads, blocks, ops, seed, loads, stores, branches, dep_p, dep_mean, footprint,
        );
        let cfg = DesignPoint::ALL[point].config();
        let a = simulate(&p, &cfg);
        let r = simulate_reference(&p, &cfg);
        assert_identical(&a, &r);
    }

    /// The self-profiling probe observes the same executed op stream from
    /// both engines (identical frequencies, pairs and sync mix) and does
    /// not perturb timing.
    #[test]
    fn probe_observes_identical_streams(
        n_threads in 1usize..5,
        ops in 200u32..2000,
        seed in 0u64..1000,
        point in 0usize..5,
    ) {
        let p = random_program(n_threads, 2, ops, seed, 0.3, 0.1, 0.1, 0.4, 8.0, 7);
        let cfg = DesignPoint::ALL[point].config();
        let plain = simulate(&p, &cfg);
        let (probed, after) = simulate_profiled(&p, &cfg);
        let (_, before) = simulate_reference_profiled(&p, &cfg);
        assert_identical(&plain, &probed);
        prop_assert_eq!(&after.op_freq, &before.op_freq, "executed op mix must match");
        prop_assert_eq!(&after.pairs, &before.pairs, "dynamic op pairs must match");
        prop_assert_eq!(&after.sync, &before.sync);
        prop_assert_eq!(before.fused_pairs, 0, "reference never fuses");
        prop_assert_eq!(before.dispatches, before.total_ops());
        prop_assert!(after.dispatches <= before.dispatches);
    }

    /// Catalog workloads at random seeds: the real benchmark generators
    /// (producer/consumer queues, locks, cond barriers, task queues) hit
    /// sync paths the random fork-join programs don't.
    #[test]
    fn catalog_workloads_match_reference(
        which in 0usize..30,
        seed in 1u64..100,
        point in 0usize..5,
    ) {
        let benches = rppm::workloads::all();
        let bench = &benches[which];
        let p = bench.build(&Params { scale: 0.02, seed });
        let cfg = DesignPoint::ALL[point].config();
        let a = simulate(&p, &cfg);
        let r = simulate_reference(&p, &cfg);
        assert_identical(&a, &r);
    }
}

/// Single-op and empty-block degenerate shapes (fusion windows can't
/// straddle what doesn't exist).
#[test]
fn degenerate_programs_match_reference() {
    for (n_threads, ops) in [(1usize, 1u32), (1, 2), (2, 1), (4, 3)] {
        let p = random_program(n_threads, 1, ops, 7, 0.5, 0.2, 0.2, 0.5, 2.0, 3);
        let cfg = DesignPoint::Base.config();
        let a = simulate(&p, &cfg);
        let r = simulate_reference(&p, &cfg);
        assert_eq!(
            a.total_cycles.to_bits(),
            r.total_cycles.to_bits(),
            "{n_threads} threads x {ops} ops"
        );
    }
}

/// The paper's profiling-run insensitivity sanity: a workload simulated at
/// two different generator seeds gives different streams, which the probe
/// must reflect (guards against the profile being accidentally static).
#[test]
fn probe_distinguishes_seeds() {
    let bench = by_name("kmeans").expect("known workload");
    let p1 = bench.build(&Params {
        scale: 0.02,
        seed: 1,
    });
    let p2 = bench.build(&Params {
        scale: 0.02,
        seed: 2,
    });
    let cfg = DesignPoint::Base.config();
    let (_, a) = simulate_profiled(&p1, &cfg);
    let (_, b) = simulate_profiled(&p2, &cfg);
    assert_eq!(a.total_ops(), b.total_ops(), "same size at equal scale");
    assert_ne!(a.pairs, b.pairs, "distinct dynamic streams");
}

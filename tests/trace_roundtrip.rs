//! Trace interchange round-trip properties: for arbitrary programs,
//! `export -> import` — through the JSON format, the `RPT1` binary
//! container, and chained conversions between the two — reproduces the
//! program, its one-time profile, and every design-point prediction bit
//! for bit.

use proptest::prelude::*;
use rppm::prelude::*;
use rppm::trace::{
    export_program, export_program_binary, import_program, import_program_binary, AddressPattern,
    BlockSpec, BranchPattern,
};

/// Builds a structurally valid multi-threaded program from sampled scalars:
/// thread count, epochs, block size, instruction mix, address/branch
/// pattern selectors and the synchronization idiom (barrier, critical
/// section, or producer/consumer queue).
#[allow(clippy::too_many_arguments)] // one scalar per sampled strategy
fn arb_program(
    threads: usize,
    epochs: u32,
    ops: u32,
    loads: f64,
    chain: f64,
    pattern_sel: u32,
    sync_sel: u32,
    seed: u64,
) -> Program {
    let mut b = ProgramBuilder::new("arb", threads);
    let hot = b.alloc_region(512);
    let big = b.alloc_region(8192);
    let bar = b.alloc_barrier();
    let m = b.alloc_mutex();
    let q = b.alloc_queue();
    b.spawn_workers();
    for e in 0..epochs {
        if sync_sel % 3 == 2 && threads > 1 {
            b.thread(0u32).produce(q, threads as u32 - 1);
        }
        for t in 0..threads as u32 {
            if sync_sel % 3 == 2 && t > 0 {
                b.thread(t).consume(q);
            }
            let mut spec = BlockSpec::new(ops, seed ^ ((t as u64) << 32) ^ e as u64)
                .loads(loads)
                .stores(loads / 4.0)
                .branches(0.1)
                .load_chain(chain)
                .deps(0.4, 3.0);
            spec = match (pattern_sel + t + e) % 3 {
                0 => spec.addr(
                    AddressPattern::stream(big.chunk(t as u64, threads as u64)),
                    1.0,
                ),
                1 => spec.addr(AddressPattern::hot(big, 128, 0.75), 1.0),
                _ => spec
                    .addr(AddressPattern::random(hot), 0.5)
                    .addr(AddressPattern::strided(big, 4), 0.5),
            };
            spec = match (pattern_sel + e) % 3 {
                0 => spec.branch_pattern(BranchPattern::loop_every(16)),
                1 => spec.branch_pattern(BranchPattern::bernoulli(0.6)),
                _ => spec
                    .branch_pattern(BranchPattern::periodic(0b1011, 4))
                    .sites(2),
            };
            b.thread(t).block(spec);
            match sync_sel % 3 {
                0 => {
                    b.thread(t).barrier(bar);
                }
                1 => {
                    b.thread(t)
                        .lock(m)
                        .block(BlockSpec::new(32, seed ^ 0xC5))
                        .unlock(m);
                }
                _ => {}
            }
        }
    }
    b.join_workers();
    b.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// export -> import is the identity on programs, and the imported
    /// program profiles and predicts bit-identically on every design
    /// point.
    #[test]
    fn export_import_preserves_profile_and_predictions(
        threads in 2usize..5,
        epochs in 1u32..4,
        ops in 500u32..3_000,
        loads in 0.05f64..0.4,
        chain in 0.0f64..0.3,
        pattern_sel in 0u32..9,
        sync_sel in 0u32..9,
        seed in 0u64..1_000,
    ) {
        let program = arb_program(threads, epochs, ops, loads, chain, pattern_sel, sync_sel, seed);
        let text = export_program(&program).expect("arbitrary programs serialize");
        let imported = import_program(&text).expect("own exports import");
        prop_assert_eq!(&program, &imported);

        let original = profile(&program);
        let roundtripped = profile(&imported);
        prop_assert_eq!(&original, &roundtripped);

        for dp in DesignPoint::ALL {
            let a = predict(&original, &dp.config());
            let b = predict(&roundtripped, &dp.config());
            prop_assert_eq!(
                a.total_cycles.to_bits(),
                b.total_cycles.to_bits(),
                "prediction diverged on {}", dp
            );
        }

        // Canonical form: exporting the import is byte-identical.
        prop_assert_eq!(text, export_program(&imported).expect("re-exports"));
    }

    /// Chained conversion JSON -> binary -> JSON is the identity, and both
    /// containers profile and predict bit-identically. This is the
    /// trace_convert contract: a trace may hop between formats any number
    /// of times without drifting.
    #[test]
    fn json_binary_json_chain_is_bit_identical(
        threads in 2usize..5,
        epochs in 1u32..4,
        ops in 500u32..3_000,
        loads in 0.05f64..0.4,
        chain in 0.0f64..0.3,
        pattern_sel in 0u32..9,
        sync_sel in 0u32..9,
        seed in 0u64..1_000,
    ) {
        let program = arb_program(threads, epochs, ops, loads, chain, pattern_sel, sync_sel, seed);

        // JSON -> program -> binary -> program -> JSON.
        let json1 = export_program(&program).expect("serializes");
        let from_json = import_program(&json1).expect("imports");
        let bin = export_program_binary(&from_json).expect("binary serializes");
        let from_bin = import_program_binary(&bin).expect("binary imports");
        let json2 = export_program(&from_bin).expect("re-serializes");
        prop_assert_eq!(&json1, &json2, "JSON -> binary -> JSON must be the identity");
        prop_assert_eq!(&program, &from_bin);

        // Binary is canonical too: re-exporting its import is byte-identical.
        prop_assert_eq!(&bin, &export_program_binary(&from_bin).expect("re-exports"));

        // Both containers carry the same profile and predictions, bit for bit.
        let p_json = profile(&from_json);
        let p_bin = profile(&from_bin);
        prop_assert_eq!(&p_json, &p_bin);
        for dp in DesignPoint::ALL {
            let a = predict(&p_json, &dp.config());
            let b = predict(&p_bin, &dp.config());
            prop_assert_eq!(
                a.total_cycles.to_bits(),
                b.total_cycles.to_bits(),
                "prediction diverged between containers on {}", dp
            );
        }
    }
}

/// The committed, externally written example file imports, profiles,
/// predicts, and round-trips — proof the schema is writable by hand and
/// not just by our own exporter.
#[test]
fn committed_example_trace_round_trips() {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("examples")
        .join("traces")
        .join("mini.json");
    let text = std::fs::read_to_string(&path).expect("committed example exists");
    let program = import_program(&text).expect("example file conforms to the schema");
    assert_eq!(program.name, "mini-external");
    assert_eq!(program.num_threads(), 2);
    assert!(program.total_ops() > 0);

    let prof = profile(&program);
    let pred = predict(&prof, &DesignPoint::Base.config());
    assert!(pred.total_cycles.is_finite() && pred.total_cycles > 0.0);

    let re_exported = export_program(&program).expect("serializes");
    let re_imported = import_program(&re_exported).expect("round-trips");
    assert_eq!(program, re_imported);
    assert_eq!(
        profile(&re_imported),
        prof,
        "re-imported trace must profile identically"
    );
}

/// The committed binary twin of the example trace imports identically to
/// its JSON source — this pins the `RPT1` encoding itself: any change to
/// the on-disk byte layout breaks this test and must come with a container
/// version bump (and a regenerated example).
#[test]
fn committed_binary_example_matches_json_twin() {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("examples")
        .join("traces");
    let json = rppm::trace::read_program_any(dir.join("mini.json")).expect("json twin imports");
    let bin = rppm::trace::read_program_any(dir.join("mini.rpt")).expect("binary twin imports");
    assert_eq!(
        json, bin,
        "the two committed containers must carry one program"
    );
    assert_eq!(
        rppm::trace::program_fingerprint(&json),
        rppm::trace::program_fingerprint(&bin)
    );
    // The committed bytes are exactly what the current encoder produces.
    let bytes = std::fs::read(dir.join("mini.rpt")).expect("committed binary exists");
    assert_eq!(
        bytes,
        export_program_binary(&json).expect("re-encodes"),
        "RPT1 byte layout changed: bump BINARY_TRACE_VERSION and regenerate \
         examples/traces/mini.rpt with trace_convert"
    );
}

//! Property-style integration tests on model invariants, spanning crates.

use proptest::prelude::*;
use rppm::prelude::*;
use rppm::trace::{AddressPattern, BlockSpec};

fn tiny_program(ops: u32, loads: f64, seed: u64) -> Program {
    let mut b = ProgramBuilder::new("prop", 2);
    let r = b.alloc_region(4096);
    let bar = b.alloc_barrier();
    b.spawn_workers();
    for t in 0..2u32 {
        b.thread(t)
            .block(
                BlockSpec::new(ops, seed + t as u64)
                    .loads(loads)
                    .branches(0.1)
                    .addr(AddressPattern::random(r), 1.0),
            )
            .barrier(bar);
    }
    b.join_workers();
    b.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Predictions are positive, finite, and at least as long as the
    /// slowest thread's active time.
    #[test]
    fn prediction_is_well_formed(ops in 2_000u32..20_000, loads in 0.05f64..0.4) {
        let program = tiny_program(ops, loads, 77);
        let prof = profile(&program);
        let pred = predict(&prof, &DesignPoint::Base.config());
        prop_assert!(pred.total_cycles.is_finite() && pred.total_cycles > 0.0);
        let max_active = pred.threads.iter().map(|t| t.active_cycles).fold(0.0, f64::max);
        prop_assert!(pred.total_cycles >= max_active - 1e-6);
        // CPI stacks are non-negative in every component.
        for t in &pred.threads {
            for v in t.cpi.values() {
                prop_assert!(v >= 0.0, "negative CPI component {v}");
            }
        }
    }

    /// More work means more predicted (and simulated) time.
    #[test]
    fn time_is_monotone_in_work(ops in 2_000u32..10_000) {
        let config = DesignPoint::Base.config();
        let small = tiny_program(ops, 0.2, 5);
        let large = tiny_program(ops * 2, 0.2, 5);
        let p_small = predict(&profile(&small), &config).total_cycles;
        let p_large = predict(&profile(&large), &config).total_cycles;
        prop_assert!(p_large > p_small);
        let s_small = simulate(&small, &config).total_cycles;
        let s_large = simulate(&large, &config).total_cycles;
        prop_assert!(s_large > s_small);
    }
}

/// The accumulation study (Table I) and the full pipeline agree on the
/// qualitative point: a balanced barrier workload's prediction error stays
/// bounded rather than accumulating, because RPPM predicts per-epoch times
/// rather than relying on error cancellation.
#[test]
fn barrier_heavy_workload_stays_accurate() {
    let bench = rppm::workloads::by_name("pathfinder").expect("known");
    let program = bench.build(&WorkloadParams {
        scale: 0.1,
        seed: 2,
    });
    let prof = profile(&program);
    let config = DesignPoint::Base.config();
    let err = abs_pct_error(
        predict(&prof, &config).total_cycles,
        simulate(&program, &config).total_cycles,
    );
    assert!(err < 0.5, "barrier-heavy error {:.0}%", err * 100.0);
}

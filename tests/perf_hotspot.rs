//! Paired timing harness for the PGO work, on the exact workload the
//! bench_guard gates (`hotspot` at scale 0.1). Ignored by default:
//!
//! ```text
//! cargo test --release --test perf_hotspot -- --ignored --nocapture
//! ```
//!
//! Optimized and reference simulation runs are interleaved (ABAB) so slow
//! drift of the host machine cancels out of the ratio.

use rppm_sim::{simulate, simulate_profiled, simulate_reference};
use rppm_trace::DesignPoint;
use rppm_workloads::{by_name, Params};
use std::time::Instant;

fn time_one<F: FnMut() -> f64>(f: &mut F) -> f64 {
    let t = Instant::now();
    std::hint::black_box(f());
    t.elapsed().as_secs_f64() * 1e3
}

#[test]
#[ignore]
fn paired_hotspot() {
    let bench = by_name("hotspot").expect("known benchmark");
    let params = Params {
        scale: 0.1,
        ..Params::full()
    };
    let program = bench.build(&params);
    let config = DesignPoint::Base.config();
    let total_ops = simulate(&program, &config).total_ops();

    let mut f_opt = || simulate(&program, &config).total_cycles;
    let mut f_ref = || simulate_reference(&program, &config).total_cycles;
    let mut f_prof = || simulate_profiled(&program, &config).0.total_cycles;

    // Warmup.
    time_one(&mut f_opt);
    time_one(&mut f_ref);

    let rounds = 40;
    let (mut opt, mut refr, mut prof) = (Vec::new(), Vec::new(), Vec::new());
    for _ in 0..rounds {
        opt.push(time_one(&mut f_opt));
        refr.push(time_one(&mut f_ref));
        prof.push(time_one(&mut f_prof));
    }
    let med = |v: &mut Vec<f64>| {
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        v[v.len() / 2]
    };
    let (m_opt, m_ref, m_prof) = (med(&mut opt), med(&mut refr), med(&mut prof));
    println!(
        "hotspot0.1 ops={total_ops}: opt={m_opt:.3}ms ({:.1}ns/op)  ref={m_ref:.3}ms  prof={m_prof:.3}ms",
        m_opt * 1e6 / total_ops as f64
    );
    println!(
        "  ratio opt/ref={:.3}  prof/opt={:.3}  min opt={:.3} ref={:.3}",
        m_opt / m_ref,
        m_prof / m_opt,
        opt[0],
        refr[0]
    );
}

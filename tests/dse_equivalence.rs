//! Differential property suite for the DSE engine: the precompute/evaluate
//! split ([`rppm::core::PreparedProfile`] / batched Equation 1) must be
//! **bit-identical** to the scalar `predict()` path on every profile and
//! every configuration — the split changes cost, never results. Random
//! workloads × random design points, plus the degenerate spaces a sweep
//! can encounter (single point, duplicated configs, extreme cache
//! geometries).

use proptest::prelude::*;
use rppm::core::{predict, predict_crit, predict_main, ConfigSpace, PreparedProfile};
use rppm::trace::{CacheGeometry, DesignPoint, MachineConfig};
use rppm::Session;
use std::sync::Arc;

/// Workloads with distinct sync behaviour: barriers, critical sections and
/// a task queue.
const WORKLOADS: [&str; 3] = ["hotspot", "kmeans", "swaptions"];

fn space() -> ConfigSpace {
    ConfigSpace::default_space()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Random profile × random design points: every batched evaluation
    /// equals the scalar prediction bit for bit, whatever the worker
    /// count.
    #[test]
    fn batched_is_bit_identical_to_scalar(
        which in 0usize..WORKLOADS.len(),
        seed in 1u64..50,
        jobs in 1usize..5,
        indices in proptest::collection::vec(0usize..108_000, 1..12),
    ) {
        let space = space();
        let session = Session::builder().jobs(jobs).build();
        let profile = session
            .workload(WORKLOADS[which])
            .expect("catalog workload")
            .scale(0.02)
            .seed(seed)
            .profile();
        let configs: Vec<MachineConfig> =
            indices.iter().map(|&i| space.config(i % space.len())).collect();

        let batch = profile.prepared().predict_batch(&configs);
        prop_assert_eq!(batch.len(), configs.len());
        for (cycles, config) in batch.iter().zip(&configs) {
            let scalar = profile.predict(config);
            prop_assert_eq!(
                cycles.to_bits(),
                scalar.total_cycles.to_bits(),
                "config {} diverged",
                &config.name
            );
        }
    }

    /// The prepared baselines agree with the scalar MAIN/CRIT paths.
    #[test]
    fn prepared_baselines_are_bit_identical(
        which in 0usize..WORKLOADS.len(),
        index in 0usize..108_000,
    ) {
        let space = space();
        let config = space.config(index % space.len());
        let session = Session::new();
        let profile = session
            .workload(WORKLOADS[which])
            .expect("catalog workload")
            .scale(0.02)
            .seed(7)
            .profile();
        let prep = PreparedProfile::new(Arc::clone(profile.profile()));
        prop_assert_eq!(
            prep.predict_main(&config).to_bits(),
            predict_main(profile.profile(), &config).to_bits()
        );
        prop_assert_eq!(
            prep.predict_crit(&config).to_bits(),
            predict_crit(profile.profile(), &config).to_bits()
        );
        // And the full Prediction structure, not just total cycles.
        let a = prep.predict(&config);
        let b = predict(profile.profile(), &config);
        prop_assert_eq!(a.total_cycles.to_bits(), b.total_cycles.to_bits());
        prop_assert_eq!(a.total_seconds.to_bits(), b.total_seconds.to_bits());
        prop_assert_eq!(a.threads.len(), b.threads.len());
    }
}

#[test]
fn degenerate_single_point_space() {
    let session = Session::new();
    let profile = session
        .workload("lud")
        .expect("catalog")
        .scale(0.02)
        .profile();
    let config = DesignPoint::Base.config();
    let batch = profile.predict_batch(std::slice::from_ref(&config));
    assert_eq!(batch.len(), 1);
    assert_eq!(
        batch[0].to_bits(),
        profile.predict(&config).total_cycles.to_bits()
    );
}

#[test]
fn duplicate_configs_get_identical_bits() {
    let session = Session::builder().jobs(4).build();
    let profile = session
        .workload("nn")
        .expect("catalog")
        .scale(0.02)
        .profile();
    // The same configuration many times, split across workers: memoized
    // rate columns and fresh ones must produce the same bits.
    let configs = vec![DesignPoint::Big.config(); 9];
    let batch = profile.predict_batch(&configs);
    for w in batch.windows(2) {
        assert_eq!(w[0].to_bits(), w[1].to_bits());
    }
    assert_eq!(
        batch[0].to_bits(),
        profile.predict(&configs[0]).total_cycles.to_bits()
    );
}

#[test]
fn extreme_cache_geometries_stay_identical() {
    let session = Session::new();
    let profile = session
        .workload("streamcluster")
        .expect("catalog")
        .scale(0.02)
        .profile();
    let mut tiny = DesignPoint::Base.config();
    tiny.name = "tiny-caches".into();
    tiny.l1d = CacheGeometry::new(64, 1, 64, tiny.l1d.latency);
    tiny.l1i = CacheGeometry::new(128, 1, 64, tiny.l1i.latency);
    let mut huge = DesignPoint::Base.config();
    huge.name = "huge-l3".into();
    huge.l3 = CacheGeometry::new(1 << 30, 16, 64, huge.l3.latency);
    let configs = [tiny, huge];
    let batch = profile.predict_batch(&configs);
    for (cycles, config) in batch.iter().zip(&configs) {
        assert_eq!(
            cycles.to_bits(),
            profile.predict(config).total_cycles.to_bits(),
            "{} diverged",
            config.name
        );
    }
}

/// The batched path underlying `rppm_core::sweep` finds exactly the
/// optimum a scalar scan over the same space finds.
#[test]
fn sweep_optimum_equals_scalar_scan() {
    use rppm::core::{sweep, Constraints};
    let mut space = ConfigSpace::tiny();
    space.mshrs = vec![8];
    let session = Session::new();
    let profile = session
        .workload("kmeans")
        .expect("catalog")
        .scale(0.02)
        .profile();
    let prep = PreparedProfile::new(Arc::clone(profile.profile()));
    let swept = sweep(&prep, &space, &Constraints::none(), &[0.0], 2).expect("nonempty");
    let scalar_best = (0..space.len())
        .map(|i| profile.predict(&space.config(i)).total_seconds)
        .fold(f64::MAX, f64::min);
    assert_eq!(swept.best.seconds.to_bits(), scalar_best.to_bits());
}

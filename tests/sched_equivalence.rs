//! Differential property suite for the shared discrete-event scheduler
//! ([`rppm::core::EventQueue`]): the min-heap must reproduce the retired
//! linear scan event for event, and the engines built on it must stay
//! bit-identical to each other on random *high-thread-count* fork-join
//! programs — including the format-v2 synchronization ops (reader-writer
//! locks, counting semaphores) that post wakeups through the queue.

use proptest::prelude::*;
use rppm::core::EventQueue;
use rppm::sim::{simulate, simulate_reference, SimResult};
use rppm::trace::{BlockSpec, DesignPoint, Program, ProgramBuilder};

/// The retired scheduler: a linear scan over every live `(key, thread)`
/// entry picking the **first** entry with the strictly smallest key —
/// i.e. the earliest-posted among key ties. Kept here as the oracle the
/// heap must match event for event.
#[derive(Default)]
struct ScanOracle {
    live: Vec<(u64, usize)>,
}

impl ScanOracle {
    fn post(&mut self, key: u64, thread: usize) {
        self.live.push((key, thread));
    }

    fn pop(&mut self) -> Option<(u64, usize)> {
        let best = self.live.iter().enumerate().min_by_key(|&(_, &e)| e)?.0;
        Some(self.live.swap_remove(best))
    }
}

/// Builds a fork-join program over `n_threads` workers where every thread
/// runs `phases` phases of: a compute block, a shared read (or exclusive
/// write for the designated writer) under a reader-writer lock, and a
/// semaphore-gated handoff — the v2 sync surface, at thread counts far
/// beyond the paper's 4–8.
fn rw_sem_program(n_threads: usize, phases: usize, ops: u32, seed: u64) -> Program {
    let mut b = ProgramBuilder::new("sched-stress", n_threads);
    let rw = b.alloc_rwlock();
    let sem = b.alloc_sem();
    let bar = b.alloc_barrier();
    b.spawn_workers();
    for t in 0..n_threads {
        let mut tb = b.thread(t as u32);
        for k in 0..phases {
            let spec = BlockSpec::new(ops, seed ^ ((t as u64) << 24) ^ k as u64).deps(0.3, 6.0);
            tb.block(spec);
            // One writer per phase (rotating), everyone else shares reads.
            let write = t == k % n_threads;
            tb.rw_lock(rw, write);
            tb.block(BlockSpec::new(ops / 4 + 1, seed ^ 0xABCD ^ t as u64));
            tb.rw_unlock(rw);
            // Thread 0 stocks the semaphore; the rest drain one permit each.
            if t == 0 {
                tb.sem_post(sem, (n_threads - 1) as u32);
            } else {
                tb.sem_wait(sem);
            }
            tb.barrier(bar);
        }
    }
    b.join_workers();
    b.build()
}

/// Asserts two simulation results are bit-for-bit identical (the schedule,
/// not just the total, must match).
fn assert_identical(a: &SimResult, b: &SimResult) {
    prop_assert_eq!(a.total_cycles.to_bits(), b.total_cycles.to_bits());
    prop_assert_eq!(a.threads.len(), b.threads.len());
    for (t, (x, y)) in a.threads.iter().zip(b.threads.iter()).enumerate() {
        prop_assert_eq!(x.start.to_bits(), y.start.to_bits(), "thread {} start", t);
        prop_assert_eq!(
            x.finish.to_bits(),
            y.finish.to_bits(),
            "thread {} finish",
            t
        );
        prop_assert_eq!(x.ops, y.ops, "thread {} ops", t);
    }
    prop_assert_eq!(&a.sync_events, &b.sync_events);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random interleavings of posts and pops: the heap pops exactly what
    /// the retired linear scan would have picked, every time. Keys repeat
    /// on purpose (barrier releases wake whole cohorts at one timestamp).
    #[test]
    fn event_queue_matches_linear_scan_oracle(
        script in proptest::collection::vec((0u64..50, 0usize..64, any::<bool>()), 1usize..300),
    ) {
        let mut heap = EventQueue::new();
        let mut scan = ScanOracle::default();
        for (key, thread, pop) in script {
            heap.post(key, thread);
            scan.post(key, thread);
            if pop {
                prop_assert_eq!(heap.pop(), scan.pop());
            }
        }
        loop {
            let (a, b) = (heap.pop(), scan.pop());
            prop_assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }

    /// High-thread-count fork-join programs exercising the v2 sync ops:
    /// the fused engine and the naive reference share the event queue and
    /// must produce bit-identical schedules at every design point.
    #[test]
    fn high_thread_count_engines_stay_bit_identical(
        n_threads in 8usize..96,
        phases in 1usize..4,
        ops in 50u32..600,
        seed in 0u64..1000,
        point in 0usize..5,
    ) {
        let p = rw_sem_program(n_threads, phases, ops, seed);
        // One core per thread: the engines enforce the paper's
        // thread-per-core assumption, so scaling threads scales cores.
        let cfg = DesignPoint::ALL[point].config_with_cores(n_threads as u32);
        assert_identical(&simulate(&p, &cfg), &simulate_reference(&p, &cfg));
    }

    /// The logical profiler walks the same programs with its own inline
    /// heap; its profile must stay structurally consistent (epochs =
    /// events + 1 on every thread) at any thread count and sync mix.
    #[test]
    fn profiler_stays_consistent_at_high_thread_counts(
        n_threads in 8usize..96,
        phases in 1usize..3,
        seed in 0u64..1000,
    ) {
        let p = rw_sem_program(n_threads, phases, 100, seed);
        let prof = rppm::profiler::profile(&p);
        prop_assert!(prof.is_consistent());
        prop_assert_eq!(prof.threads.len(), n_threads);
    }
}

/// A 1024-thread mostly-idle program is exactly the shape the heap exists
/// for; it must still produce the same answer as the reference engine
/// (the perf half of this claim lives in the `sched` bench group).
#[test]
fn mostly_idle_1024_threads_matches_reference() {
    let n = 1024;
    let mut b = ProgramBuilder::new("mostly-idle", n);
    let bar = b.alloc_barrier();
    b.spawn_workers();
    for t in 0..n {
        let mut tb = b.thread(t as u32);
        // Thread 0 does the real work; the other 1023 block almost
        // immediately and wait at the barrier.
        let ops = if t == 0 { 20_000 } else { 10 };
        tb.block(BlockSpec::new(ops, 7 ^ t as u64));
        tb.barrier(bar);
    }
    b.join_workers();
    let p = b.build();
    let cfg = DesignPoint::Base.config_with_cores(n as u32);
    let a = simulate(&p, &cfg);
    let r = simulate_reference(&p, &cfg);
    assert_eq!(a.total_cycles.to_bits(), r.total_cycles.to_bits());
    assert_eq!(a.threads.len(), r.threads.len());
}

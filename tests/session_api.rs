//! Integration tests for the `rppm::Session` facade and the unified
//! `rppm::Error`: the profile-once contract as observable library
//! behaviour, and error-cause preservation through `source()`.

use rppm::prelude::*;
use rppm::trace::{BlockSpec, Program, ProgramBuilder, ProgramError, Segment, TraceFileError};
use std::error::Error as StdError;

/// The acceptance-criterion test: two predictions on different machine
/// configurations profile the workload exactly once — measured both at
/// the session cache and at the process-wide profiler counter.
#[test]
fn two_predictions_profile_exactly_once() {
    let session = Session::builder().jobs(2).build();
    let calls_before = rppm::profiler::profile_call_count();

    let base = session
        .workload("hotspot")
        .expect("catalog")
        .scale(0.02)
        .seed(1)
        .profile()
        .predict(&DesignPoint::Base.config());
    let big = session
        .workload("hotspot")
        .expect("catalog")
        .scale(0.02)
        .seed(1)
        .profile()
        .predict(&DesignPoint::Big.config());

    assert!(base.total_cycles > 0.0 && big.total_cycles > 0.0);
    assert_ne!(base.total_cycles.to_bits(), big.total_cycles.to_bits());
    assert_eq!(
        rppm::profiler::profile_call_count() - calls_before,
        1,
        "exactly one profile() call for two predictions"
    );
    assert_eq!(session.profiles_collected(), 1);
    assert_eq!(session.cache_hits(), 1);
}

/// Different scales (or seeds) are different workloads: no false sharing.
#[test]
fn distinct_params_profile_separately() {
    let session = Session::new();
    let w = session.workload("nn").expect("catalog");
    w.clone().scale(0.02).seed(1).profile();
    w.clone().scale(0.03).seed(1).profile();
    w.scale(0.02).seed(2).profile();
    assert_eq!(session.profiles_collected(), 3);
    assert_eq!(session.cache_hits(), 0);
}

/// The session facade and the stateless free functions are the same
/// model: bit-identical predictions.
#[test]
fn session_matches_free_functions() {
    let session = Session::new();
    let handle = session
        .workload("lud")
        .expect("catalog")
        .scale(0.02)
        .seed(1)
        .profile();

    let bench = rppm::workloads::by_name("lud").expect("catalog");
    let program = bench.build(&WorkloadParams {
        scale: 0.02,
        seed: 1,
    });
    let prof = profile(&program);
    for dp in DesignPoint::ALL {
        let config = dp.config();
        assert_eq!(
            handle.predict(&config).total_cycles.to_bits(),
            predict(&prof, &config).total_cycles.to_bits()
        );
    }
}

/// A session shares its cache with the bench experiment engine: a report
/// run and a library caller amortize the same profiles.
#[test]
fn session_cache_is_shared_with_experiment_plans() {
    use rppm_bench::ExperimentPlan;

    let session = Session::builder().jobs(2).build();
    let params = WorkloadParams {
        scale: 0.02,
        seed: 1,
    };
    session
        .workload("nn")
        .expect("catalog")
        .scale(params.scale)
        .seed(params.seed)
        .profile();
    let calls_before = rppm::profiler::profile_call_count();

    let bench = rppm::workloads::by_name("nn").expect("catalog");
    let plan = ExperimentPlan::single_config([bench], params, DesignPoint::Base.config());
    let runs = plan.run(session.cache(), 2);
    assert_eq!(runs.len(), 1);
    assert_eq!(
        rppm::profiler::profile_call_count(),
        calls_before,
        "the plan reused the session's cached profile"
    );
    assert_eq!(session.profiles_collected(), 1);
}

#[test]
fn unknown_workload_error_displays_and_has_no_source() {
    let err = Session::new().workload("not-a-benchmark").unwrap_err();
    assert!(matches!(err, rppm::Error::UnknownWorkload { .. }));
    let msg = err.to_string();
    assert!(msg.contains("not-a-benchmark"), "message names it: {msg}");
    assert!(msg.lines().count() == 1, "one-line message: {msg}");
    assert!(err.source().is_none());
}

#[test]
fn trace_error_preserves_source_for_missing_file() {
    let err = Session::new()
        .import("/definitely/not/a/real/trace.json")
        .unwrap_err();
    assert!(matches!(err, rppm::Error::Trace(_)));
    let source = err.source().expect("trace cause preserved");
    let trace: &TraceFileError = source.downcast_ref().expect("is a TraceFileError");
    // ...and the chain continues into the raw I/O error.
    assert!(matches!(trace, TraceFileError::Io { .. }));
    let io: &std::io::Error = trace.source().expect("io cause").downcast_ref().unwrap();
    assert_eq!(io.kind(), std::io::ErrorKind::NotFound);
}

#[test]
fn trace_error_preserves_source_for_corrupt_content() {
    let dir = std::env::temp_dir().join("rppm-session-api-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("garbage.rpt");
    std::fs::write(&path, b"this is not a trace file at all").unwrap();
    let err = Session::new().import(&path).unwrap_err();
    let trace: &TraceFileError = err
        .source()
        .expect("cause preserved")
        .downcast_ref()
        .expect("is a TraceFileError");
    // Sniffed as JSON (no RPT1 magic) and rejected by the parser.
    assert!(
        matches!(trace, TraceFileError::Json { .. }),
        "got {trace:?}"
    );
}

#[test]
fn invalid_program_error_preserves_source() {
    // A thread with work but no creating event is structurally invalid.
    let mut program = Program::new("orphan", 2);
    program.threads[1]
        .segments
        .push(Segment::Block(BlockSpec::new(100, 1)));
    let err = Session::new().program(program).unwrap_err();
    assert!(matches!(err, rppm::Error::InvalidProgram(_)));
    assert!(err.to_string().starts_with("invalid program:"));
    let source: &ProgramError = err
        .source()
        .expect("program cause preserved")
        .downcast_ref()
        .expect("is a ProgramError");
    assert!(matches!(source, ProgramError::NeverCreated { .. }));
    // The same violation surfaces identically from the builder API.
    let mut b = ProgramBuilder::new("orphan", 2);
    b.thread(1u32).block(BlockSpec::new(100, 1));
    let builder_err: rppm::Error = b.try_build().unwrap_err().into();
    assert_eq!(builder_err.to_string(), err.to_string());
}

#[test]
fn io_error_preserves_source() {
    let err = rppm::Error::Io {
        path: "/tmp/some/path".into(),
        source: std::io::Error::new(std::io::ErrorKind::PermissionDenied, "denied"),
    };
    assert!(err.to_string().contains("/tmp/some/path"));
    let io: &std::io::Error = err
        .source()
        .expect("io cause preserved")
        .downcast_ref()
        .expect("is an io::Error");
    assert_eq!(io.kind(), std::io::ErrorKind::PermissionDenied);
}

/// A valid custom program adopted via `Session::program` profiles and
/// predicts like any import, and is fingerprint-deduped against an
/// equivalent imported trace.
#[test]
fn adopted_programs_share_fingerprints_with_imports() {
    let mut b = ProgramBuilder::new("adopted", 2);
    b.spawn_workers();
    b.thread(1u32).block(BlockSpec::new(2_000, 3).loads(0.2));
    b.join_workers();
    let program = b.build();
    let json = rppm::trace::export_program(&program).expect("exports");

    let dir = std::env::temp_dir().join("rppm-session-api-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("adopted.json");
    std::fs::write(&path, json).unwrap();

    let session = Session::new();
    session.program(program).expect("valid").profile();
    session.import(&path).expect("imports").profile();
    assert_eq!(
        session.profiles_collected(),
        1,
        "adopted program and its exported twin share one profile"
    );
    assert_eq!(session.cache_hits(), 1);
}

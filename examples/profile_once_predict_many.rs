//! The headline RPPM workflow: collect ONE microarchitecture-independent
//! profile, serialize it, then predict a whole design space from it —
//! no re-profiling, no simulation.
//!
//! ```text
//! cargo run --release --example profile_once_predict_many
//! ```

use rppm::prelude::*;

fn main() -> Result<(), rppm::Error> {
    let session = Session::builder().build();

    // Profile once...
    let profile = session.workload("kmeans")?.scale(0.2).seed(7).profile();

    // ...serialize to the on-disk artifact (what you would archive)...
    let json = profile.profile().to_json();
    println!("profile serialized: {} bytes of JSON", json.len());

    // ...deserialize (e.g. weeks later, on another machine)...
    let restored = ApplicationProfile::from_json(&json).expect("round-trips");
    assert_eq!(**profile.profile(), restored);

    // ...and sweep the whole Table IV design space analytically, in
    // parallel, from the one profile.
    let configs: Vec<_> = DesignPoint::ALL.iter().map(|dp| dp.config()).collect();
    let predictions = profile.predict_sweep(&configs);
    assert_eq!(session.profiles_collected(), 1, "one profile, many configs");

    println!(
        "\n{:<10} {:>10} {:>12} {:>12}",
        "design", "freq", "cycles", "time (ms)"
    );
    let mut best: Option<(String, f64)> = None;
    for (config, p) in configs.iter().zip(&predictions) {
        println!(
            "{:<10} {:>7.2}GHz {:>12.0} {:>12.4}",
            config.name,
            config.freq_ghz,
            p.total_cycles,
            p.total_seconds * 1e3
        );
        if best.as_ref().is_none_or(|(_, t)| p.total_seconds < *t) {
            best = Some((config.name.clone(), p.total_seconds));
        }
    }
    let (name, secs) = best.expect("nonempty design space");
    println!("\npredicted optimum: '{name}' at {:.4} ms", secs * 1e3);
    Ok(())
}

//! Building your own workload with the trace DSL: a producer/consumer
//! pipeline with a critical section, adopted into a session, profiled and
//! predicted end to end.
//!
//! ```text
//! cargo run --release --example custom_workload
//! ```

use rppm::prelude::*;
use rppm::trace::{AddressPattern, BranchPattern};

fn main() -> Result<(), rppm::Error> {
    // Three threads: a producer decodes items; two consumers process them,
    // updating a shared histogram under a mutex.
    let mut b = ProgramBuilder::new("my-pipeline", 3);
    let input = b.alloc_region(200_000); // streamed input (12.8 MB)
    let hist = b.alloc_region(256); // hot shared histogram
    let queue = b.alloc_queue();
    let lock = b.alloc_mutex();

    let decode = b.template(
        BlockSpec::new(0, 0)
            .loads(0.3)
            .stores(0.05)
            .branches(0.08)
            .deps(0.3, 5.0)
            .branch_pattern(BranchPattern::loop_every(24)),
    );
    let process = b.template(
        BlockSpec::new(0, 0)
            .loads(0.25)
            .fp(0.2, 0.1)
            .branches(0.1)
            .deps(0.35, 4.0)
            .branch_pattern(BranchPattern::bernoulli(0.8)),
    );
    let update = b.template(BlockSpec::new(0, 0).loads(0.3).stores(0.3).deps(0.5, 2.0));

    b.spawn_workers();
    for item in 0..20u32 {
        let mut d = decode.with_ops(6_000).with_seed(item as u64);
        d.addr = vec![(AddressPattern::stream_from(input, item as u64 * 5_000), 1.0)];
        b.thread(0u32).block(d).produce(queue, 2);

        for t in 1..3u32 {
            let mut p = process.with_ops(4_000).with_seed((item + 100 * t) as u64);
            p.addr = vec![(AddressPattern::stream_from(input, item as u64 * 5_000), 1.0)];
            let mut u = update.with_ops(300).with_seed((item + 200 * t) as u64);
            u.addr = vec![(AddressPattern::random(hist), 1.0)];
            b.thread(t)
                .consume(queue)
                .block(p)
                .lock(lock)
                .block(u)
                .unlock(lock);
        }
    }
    b.join_workers();

    // Adopt the program into a session: it is validated, fingerprinted by
    // content, and profiled once on first use.
    let session = Session::builder().build();
    let profile = session.program(b.build())?.profile();
    let prof = profile.profile();
    let (cs, bar, cond) = prof.sync_event_counts();
    println!(
        "profiled: {} ops, {cs} critical sections, {bar} barriers, {cond} cond-var events",
        prof.total_ops()
    );
    for usage in prof.classify_cond_vars() {
        println!("  recognized: {usage:?}");
    }

    let config = DesignPoint::Base.config();
    let pred = profile.predict(&config);
    let sim = profile.simulate(&config);
    println!(
        "predicted {:.0} cycles, simulated {:.0} cycles (error {:.1}%)",
        pred.total_cycles,
        sim.total_cycles,
        abs_pct_error(pred.total_cycles, sim.total_cycles) * 100.0
    );
    for (t, th) in pred.threads.iter().enumerate() {
        println!(
            "  thread {t}: active {:.0} cycles, sync wait {:.0} cycles",
            th.active_cycles, th.sync_cycles
        );
    }
    Ok(())
}

//! Quickstart: open a session, profile a workload once, predict a
//! machine, sanity-check against detailed simulation.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use rppm::prelude::*;

fn main() -> Result<(), rppm::Error> {
    // 1. Open a session. It owns the profile-once cache: however many
    //    configurations (or callers) ask about a workload, it is profiled
    //    exactly once.
    let session = Session::builder().build();

    // 2. Pick a benchmark analog (or adopt your own program — see the
    //    custom_workload example) and profile it once. The profile is
    //    microarchitecture-independent: it can be serialized and reused
    //    for any number of target machines.
    let workload = session.workload("hotspot")?.scale(0.2).seed(42);
    let profile = workload.profile();
    println!(
        "workload: {} ({} threads, {} micro-ops)",
        workload.name(),
        profile.program().num_threads(),
        profile.program().total_ops()
    );
    println!(
        "profiled {} ops across {} threads",
        profile.profile().total_ops(),
        profile.profile().num_threads()
    );

    // 3. Predict the base quad-core configuration (Table IV).
    let config = DesignPoint::Base.config();
    let prediction = profile.predict(&config);
    println!(
        "RPPM predicts {:.0} cycles ({:.3} ms) on '{}'",
        prediction.total_cycles,
        prediction.total_seconds * 1e3,
        config.name
    );

    // 4. Validate against the golden-reference simulator. Re-opening the
    //    workload hits the session cache — still one profiling run.
    let reference = session
        .workload("hotspot")?
        .scale(0.2)
        .seed(42)
        .profile()
        .simulate(&config);
    assert_eq!(session.profiles_collected(), 1, "profiled exactly once");
    println!(
        "simulation:    {:.0} cycles ({:.3} ms)",
        reference.total_cycles,
        reference.total_seconds * 1e3
    );
    println!(
        "prediction error: {:.1}%",
        abs_pct_error(prediction.total_cycles, reference.total_cycles) * 100.0
    );

    // 5. Per-thread CPI stacks tell you *why* time is spent.
    println!("\npredicted mean CPI stack (cycles):");
    let stack = prediction.mean_cpi_stack();
    for (label, value) in rppm::trace::CpiStack::LABELS.iter().zip(stack.values()) {
        println!("  {label:<10} {value:>12.0}");
    }
    Ok(())
}

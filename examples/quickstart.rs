//! Quickstart: profile a workload once, predict a machine, sanity-check
//! against detailed simulation.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use rppm::prelude::*;

fn main() {
    // 1. Pick a benchmark analog (or build your own with ProgramBuilder —
    //    see the custom_workload example).
    let bench = rppm::workloads::by_name("hotspot").expect("known benchmark");
    let program = bench.build(&WorkloadParams {
        scale: 0.2,
        seed: 42,
    });
    println!(
        "workload: {} ({} threads, {} micro-ops)",
        program.name,
        program.num_threads(),
        program.total_ops()
    );

    // 2. Profile once. The profile is microarchitecture-independent: it can
    //    be serialized and reused for any number of target machines.
    let profile = profile(&program);
    println!(
        "profiled {} ops across {} threads",
        profile.total_ops(),
        profile.num_threads()
    );

    // 3. Predict the base quad-core configuration (Table IV).
    let config = DesignPoint::Base.config();
    let prediction = predict(&profile, &config);
    println!(
        "RPPM predicts {:.0} cycles ({:.3} ms) on '{}'",
        prediction.total_cycles,
        prediction.total_seconds * 1e3,
        config.name
    );

    // 4. Validate against the golden-reference simulator.
    let reference = simulate(&program, &config);
    println!(
        "simulation:    {:.0} cycles ({:.3} ms)",
        reference.total_cycles,
        reference.total_seconds * 1e3
    );
    println!(
        "prediction error: {:.1}%",
        abs_pct_error(prediction.total_cycles, reference.total_cycles) * 100.0
    );

    // 5. Per-thread CPI stacks tell you *why* time is spent.
    println!("\npredicted mean CPI stack (cycles):");
    let stack = prediction.mean_cpi_stack();
    for (label, value) in rppm::trace::CpiStack::LABELS.iter().zip(stack.values()) {
        println!("  {label:<10} {value:>12.0}");
    }
}

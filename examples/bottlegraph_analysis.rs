//! The Figure 6 case study: bottlegraphs visualize each thread's share of
//! execution time (box height) against its parallelism (box width) — the
//! tallest box is the scalability bottleneck.
//!
//! ```text
//! cargo run --release --example bottlegraph_analysis
//! ```

use rppm::core::Bottlegraph;
use rppm::prelude::*;

fn analyze(session: &Session, name: &str) -> Result<(), rppm::Error> {
    let prediction = session
        .workload(name)?
        .scale(0.15)
        .seed(9)
        .profile()
        .predict(&DesignPoint::Base.config());

    let graph = Bottlegraph::from_intervals(&prediction.intervals, prediction.total_cycles);
    println!("\n{name}: predicted bottlegraph");
    for b in graph.boxes.iter().rev() {
        if b.height < 0.005 {
            continue;
        }
        let bar = "#".repeat((b.parallelism * 10.0).round().max(1.0) as usize);
        println!(
            "  thread {}: {:>5.1}% of time  |{bar:<50}| parallelism {:.2}",
            b.thread,
            b.height * 100.0,
            b.parallelism
        );
    }
    let bottleneck = graph.bottleneck().expect("nonempty");
    println!(
        "  bottleneck: thread {} (runs at parallelism {:.2})",
        bottleneck.thread, bottleneck.parallelism
    );
    Ok(())
}

fn main() -> Result<(), rppm::Error> {
    // One session across all three case studies: each workload is
    // profiled once, and the cache would dedupe any repeats.
    let session = Session::builder().build();
    // One benchmark per Figure 6 category: balanced with idle main,
    // main-does-work, and highly imbalanced.
    for name in ["swaptions", "freqmine", "vips"] {
        analyze(&session, name)?;
    }
    assert_eq!(session.profiles_collected(), 3);
    Ok(())
}

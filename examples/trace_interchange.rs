//! The trace interchange workflow: freeze a workload to a versioned trace
//! file (JSON for auditability, `RPT1` binary for volume), import it back
//! through a session as an external tool would, and verify the imported
//! trace profiles and predicts bit-identically to the original.
//!
//! ```text
//! cargo run --release --example trace_interchange
//! ```

use rppm::prelude::*;
use rppm::trace::AddressPattern;
use rppm::trace::{export_program, import_program, write_program, write_program_binary};

fn main() -> Result<(), rppm::Error> {
    // 1. Build a workload (any Program works — a catalog analog, or your
    //    own via the DSL).
    let mut b = ProgramBuilder::new("frozen-scan", 3);
    let data = b.alloc_region(50_000);
    let bar = b.alloc_barrier();
    b.spawn_workers();
    for t in 0..3u32 {
        b.thread(t)
            .block(
                BlockSpec::new(20_000, 11 + t as u64)
                    .loads(0.3)
                    .branches(0.1)
                    .addr(AddressPattern::stream(data.chunk(t as u64, 3)), 1.0),
            )
            .barrier(bar);
    }
    b.join_workers();
    let program = b.build();

    // 2. Export it: a documented, versioned JSON file any tool can write.
    let path = std::env::temp_dir().join("frozen-scan.rppm-trace.json");
    write_program(&program, &path)?;
    println!(
        "exported {} ops to {} ({} bytes)",
        program.total_ops(),
        path.display(),
        std::fs::metadata(&path).expect("stat").len()
    );

    // 3. Import it back through a session — schema-version checked,
    //    structurally validated, cached by content fingerprint.
    let session = Session::builder().build();
    let imported = session.import(&path)?;
    assert_eq!(imported.name(), "frozen-scan");

    // 4. The imported trace is a first-class workload: one profile, any
    //    number of design points, bit-identical to the original program
    //    profiled directly.
    let original = session.program(program.clone())?.profile();
    let roundtripped = imported.profile();
    assert_eq!(
        original.profile(),
        roundtripped.profile(),
        "profiles must match bit for bit"
    );
    // The import and the original have identical content, so they share
    // one fingerprint — and therefore one profiling run.
    assert_eq!(session.profiles_collected(), 1, "fingerprint-deduped");
    for dp in DesignPoint::ALL {
        let a = original.predict(&dp.config()).total_cycles;
        let b = roundtripped.predict(&dp.config()).total_cycles;
        assert_eq!(a.to_bits(), b.to_bits());
        println!("{dp:>9}: {a:.0} predicted cycles (import identical)");
    }

    // 5. The same trace as an RPT1 binary container: a fraction of the
    //    bytes, auto-detected on import by magic, identical in content —
    //    so it joins the same cache entry (still one profiling run).
    let bin_path = std::env::temp_dir().join("frozen-scan.rpt");
    write_program_binary(&program, &bin_path)?;
    let json_bytes = std::fs::metadata(&path).expect("stat").len();
    let bin_bytes = std::fs::metadata(&bin_path).expect("stat").len();
    println!("binary container: {bin_bytes} bytes vs {json_bytes} JSON bytes");
    let from_binary = session.import(&bin_path)?;
    from_binary.profile();
    assert_eq!(
        session.profiles_collected(),
        1,
        "both containers carry one program"
    );

    // 6. Malformed files fail with typed, actionable errors — never a
    //    panic. Corrupt the version field to see one.
    let text = export_program(&program)?;
    let newer = text.replace("\"version\":1", "\"version\":99");
    match import_program(&newer) {
        Err(e) => println!("corrupted JSON rejected: {e}"),
        Ok(_) => unreachable!("version 99 must not import"),
    }
    // Through the session the same failure arrives as rppm::Error with
    // the trace diagnostic reachable via source().
    let bad_path = std::env::temp_dir().join("frozen-scan.truncated.rpt");
    let mut bad = std::fs::read(&bin_path).expect("read back");
    bad.truncate(bad.len() / 2);
    std::fs::write(&bad_path, &bad).expect("write truncated");
    match session.import(&bad_path) {
        Err(e) => {
            println!("truncated binary rejected: {e}");
            assert!(std::error::Error::source(&e).is_some(), "cause preserved");
        }
        Ok(_) => unreachable!("truncated container must not import"),
    }
    Ok(())
}

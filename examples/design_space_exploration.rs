//! The Table V case study: use RPPM to prune a design space, then simulate
//! only the surviving candidates.
//!
//! ```text
//! cargo run --release --example design_space_exploration
//! ```

use rppm::core::evaluate_choice;
use rppm::prelude::*;

fn main() -> Result<(), rppm::Error> {
    let session = Session::builder().build();
    let profile = session.workload("cfd")?.scale(0.15).seed(3).profile();

    let configs: Vec<_> = DesignPoint::ALL.iter().map(|dp| dp.config()).collect();

    // Predict every design point from the single profile (fast, fanned
    // out over the session's worker threads)...
    let predicted: Vec<f64> = profile
        .predict_sweep(&configs)
        .iter()
        .map(|p| p.total_seconds)
        .collect();
    // ...and simulate them all for ground truth (slow; in a real DSE you
    // would only simulate the model's candidate set).
    let simulated: Vec<f64> = profile
        .simulate_sweep(&configs)
        .iter()
        .map(|s| s.total_seconds)
        .collect();
    assert_eq!(session.profiles_collected(), 1, "one profile drove it all");

    println!(
        "{:<10} {:>14} {:>14}",
        "design", "predicted (ms)", "simulated (ms)"
    );
    for (k, dp) in DesignPoint::ALL.iter().enumerate() {
        println!(
            "{:<10} {:>14.4} {:>14.4}",
            dp.to_string(),
            predicted[k] * 1e3,
            simulated[k] * 1e3
        );
    }

    for bound in [0.0, 0.01, 0.03, 0.05] {
        let choice = evaluate_choice(&predicted, &simulated, bound)
            .expect("predicted and simulated cover the same five design points");
        println!(
            "bound {:>3.0}%: candidates {:?} -> chose '{}', deficiency {:.2}%",
            bound * 100.0,
            choice
                .candidates
                .iter()
                .map(|&i| DesignPoint::ALL[i].to_string())
                .collect::<Vec<_>>(),
            DesignPoint::ALL[choice.chosen],
            choice.deficiency * 100.0
        );
    }
    Ok(())
}
